//! Sweep specifications: the paper's evaluation grid as plain data.
//!
//! Each figure/table is a [`SweepSpec`] — an ordered list of
//! (device kind, atom count, steps) points. The order is the figure's
//! presentation order; the engine preserves it, so renderers can consume
//! results positionally and binaries stay byte-identical to their
//! pre-sweep-engine versions.

use cell_be::{SpawnPolicy, SpeKernelVariant};
use harness::experiments::{PAPER_ATOMS, PAPER_STEPS};
use harness::{DeviceKind, GpuModel};
use md_core::scenario::ScenarioSpec;
use mta::ThreadingMode;

/// Figure 7's atom counts (also the GPU-vs-Opteron slice of `bench_seed`).
pub const FIG7_ATOMS: [usize; 7] = [128, 256, 512, 1024, 2048, 4096, 8192];
/// Figure 8's atom counts.
pub const FIG8_ATOMS: [usize; 5] = [256, 512, 1024, 2048, 4096];
/// Figure 9's atom counts (must start at the 256-atom normalization point).
pub const FIG9_ATOMS: [usize; 6] = [256, 512, 1024, 2048, 4096, 8192];
/// The `bench_seed` slice of Figure 8's counts (the frozen baseline predates
/// the 4096-atom point).
pub const BENCH_FIG8_ATOMS: [usize; 4] = [256, 512, 1024, 2048];

/// One cacheable unit of work: run `device` on the standard reduced lattice
/// at `n_atoms` for `steps` time steps under `scenario`. `figure` names the
/// artifact the point belongs to (display/grouping only — it is *not* part
/// of the cache key, so points shared between figures hit the same cache
/// entry). The scenario *is* part of the key: a warm cache for one scenario
/// never serves another.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    pub figure: &'static str,
    pub device: DeviceKind,
    pub n_atoms: usize,
    pub steps: usize,
    pub scenario: ScenarioSpec,
}

/// An ordered set of sweep points with a stable name for the CLI.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    pub name: &'static str,
    pub description: &'static str,
    pub points: Vec<SweepPoint>,
}

impl SweepSpec {
    /// Total device executions a cold run performs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The same grid re-targeted at a different scenario (the CLI's
    /// `--scenario` axis). Every point's cache key moves with it.
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        for p in &mut self.points {
            p.scenario = scenario;
        }
        self
    }
}

fn point(figure: &'static str, device: DeviceKind, n_atoms: usize, steps: usize) -> SweepPoint {
    SweepPoint {
        figure,
        device,
        n_atoms,
        steps,
        scenario: ScenarioSpec::default(),
    }
}

/// Figure 5: the six-stage SIMD optimization ladder on one SPE. The probe
/// device times a single acceleration evaluation, so `steps` is 0.
pub fn fig5() -> SweepSpec {
    SweepSpec {
        name: "fig5",
        description: "SIMD optimization ladder for the MD kernel on one SPE",
        points: SpeKernelVariant::ALL
            .iter()
            .map(|&variant| point("fig5", DeviceKind::CellAccel { variant }, PAPER_ATOMS, 0))
            .collect(),
    }
}

/// Figure 6: SPE launch overhead, policy-major over {1, 8} SPEs.
pub fn fig6() -> SweepSpec {
    let mut points = Vec::new();
    for policy in [SpawnPolicy::RespawnEveryStep, SpawnPolicy::LaunchOnce] {
        for n_spes in [1usize, 8] {
            points.push(point(
                "fig6",
                DeviceKind::Cell {
                    n_spes,
                    policy,
                    variant: SpeKernelVariant::SimdAcceleration,
                },
                PAPER_ATOMS,
                PAPER_STEPS,
            ));
        }
    }
    SweepSpec {
        name: "fig6",
        description: "SPE thread-launch overhead, respawn vs launch-once",
        points,
    }
}

/// Table 1: Opteron vs Cell (1 SPE / 8 SPEs / PPE only).
pub fn table1() -> SweepSpec {
    let devices = [
        DeviceKind::Opteron,
        DeviceKind::cell_single_spe(),
        DeviceKind::cell_best(),
        DeviceKind::CellPpe,
    ];
    SweepSpec {
        name: "table1",
        description: "performance comparison of MD calculations, Cell vs Opteron",
        points: devices
            .into_iter()
            .map(|d| point("table1", d, PAPER_ATOMS, PAPER_STEPS))
            .collect(),
    }
}

/// Figure 7: GPU vs Opteron across atom counts, size-major.
pub fn fig7() -> SweepSpec {
    let mut points = Vec::new();
    for &n in &FIG7_ATOMS {
        points.push(point("fig7", DeviceKind::Opteron, n, PAPER_STEPS));
        points.push(point(
            "fig7",
            DeviceKind::Gpu {
                model: GpuModel::GeForce7900Gtx,
            },
            n,
            PAPER_STEPS,
        ));
    }
    SweepSpec {
        name: "fig7",
        description: "GPU vs Opteron runtime across atom counts",
        points,
    }
}

/// Figure 8: fully vs partially multithreaded MTA-2 kernel, size-major.
pub fn fig8() -> SweepSpec {
    let mut points = Vec::new();
    for &n in &FIG8_ATOMS {
        for mode in [
            ThreadingMode::FullyMultithreaded,
            ThreadingMode::PartiallyMultithreaded,
        ] {
            points.push(point("fig8", DeviceKind::Mta { mode }, n, PAPER_STEPS));
        }
    }
    SweepSpec {
        name: "fig8",
        description: "fully vs partially multithreaded MD kernel on the MTA-2",
        points,
    }
}

/// Figure 9: MTA vs Opteron runtime growth relative to the 256-atom run,
/// size-major. Normalization happens at render time, so the points are plain
/// absolute runs (shared with fig7/fig8 where the grids overlap).
pub fn fig9() -> SweepSpec {
    let mut points = Vec::new();
    for &n in &FIG9_ATOMS {
        points.push(point(
            "fig9",
            DeviceKind::Mta {
                mode: ThreadingMode::FullyMultithreaded,
            },
            n,
            PAPER_STEPS,
        ));
        points.push(point("fig9", DeviceKind::Opteron, n, PAPER_STEPS));
    }
    SweepSpec {
        name: "fig9",
        description: "increase in runtime with respect to the 256-atom run",
        points,
    }
}

/// The `BENCH_seed.json` baseline: the union of the frozen figure slices,
/// sorted by (figure, device label, atom count) so regenerated documents
/// diff stably regardless of how the underlying grids are declared.
pub fn bench_seed() -> SweepSpec {
    let mut points = Vec::new();
    for d in [
        DeviceKind::Opteron,
        DeviceKind::CellPpe,
        DeviceKind::cell_single_spe(),
        DeviceKind::cell_best(),
    ] {
        points.push(point("table1", d, PAPER_ATOMS, PAPER_STEPS));
    }
    for &variant in &SpeKernelVariant::ALL {
        points.push(point(
            "fig5",
            DeviceKind::CellAccel { variant },
            PAPER_ATOMS,
            0,
        ));
    }
    for &n in &FIG7_ATOMS {
        points.push(point("fig7", DeviceKind::Opteron, n, PAPER_STEPS));
        points.push(point(
            "fig7",
            DeviceKind::Gpu {
                model: GpuModel::GeForce7900Gtx,
            },
            n,
            PAPER_STEPS,
        ));
    }
    for &n in &BENCH_FIG8_ATOMS {
        for mode in [
            ThreadingMode::FullyMultithreaded,
            ThreadingMode::PartiallyMultithreaded,
        ] {
            points.push(point("fig8", DeviceKind::Mta { mode }, n, PAPER_STEPS));
        }
    }
    points.sort_by(|a, b| {
        (a.figure, a.device.label(), a.n_atoms).cmp(&(b.figure, b.device.label(), b.n_atoms))
    });
    SweepSpec {
        name: "bench_seed",
        description: "simulated-seconds baseline per paper figure/device (BENCH_seed.json)",
        points,
    }
}

/// The scenario extension matrix: both non-LJ scenarios (Morse/NVT and
/// truncated Coulomb) on all four paper devices at a small size — the CI
/// gate proving every device runs every reachable scenario end-to-end, with
/// caching and perf collection. Scenario-major so each device's two rows
/// sit apart, mirroring how the extension experiments are reported.
pub fn scenario_matrix() -> SweepSpec {
    let devices = [
        DeviceKind::Opteron,
        DeviceKind::cell_best(),
        DeviceKind::Gpu {
            model: GpuModel::GeForce7900Gtx,
        },
        DeviceKind::Mta {
            mode: ThreadingMode::FullyMultithreaded,
        },
    ];
    let mut points = Vec::new();
    for scenario in [ScenarioSpec::morse_nvt(), ScenarioSpec::coulomb_cutoff()] {
        for device in devices {
            points.push(SweepPoint {
                figure: "scenario-matrix",
                device,
                n_atoms: 108,
                steps: 4,
                scenario,
            });
        }
    }
    SweepSpec {
        name: "scenario_matrix",
        description: "Morse/NVT and truncated-Coulomb scenarios on all four devices",
        points,
    }
}

/// Every named spec, in evaluation-section order. This is what
/// `sweep list` prints and `sweep run --all` executes.
pub fn registry() -> Vec<SweepSpec> {
    vec![
        fig5(),
        fig6(),
        table1(),
        fig7(),
        fig8(),
        fig9(),
        bench_seed(),
        scenario_matrix(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_nonempty() {
        let specs = registry();
        for (i, a) in specs.iter().enumerate() {
            assert!(!a.is_empty(), "{} has no points", a.name);
            for b in &specs[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn grid_sizes_match_the_paper() {
        assert_eq!(fig5().len(), 6);
        assert_eq!(fig6().len(), 4);
        assert_eq!(table1().len(), 4);
        assert_eq!(fig7().len(), 14);
        assert_eq!(fig8().len(), 10);
        assert_eq!(fig9().len(), 12);
        assert_eq!(bench_seed().len(), 32);
        assert_eq!(scenario_matrix().len(), 8);
    }

    #[test]
    fn paper_figures_run_the_faithful_scenario() {
        for spec in registry() {
            if spec.name == "scenario_matrix" {
                continue;
            }
            for p in &spec.points {
                assert_eq!(
                    p.scenario,
                    ScenarioSpec::default(),
                    "{}: paper grids must stay LJ/NVE/native",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn scenario_changes_the_cache_key() {
        let p = table1().points[0];
        let base = crate::cache::point_key(
            1,
            &p.device.cache_token(),
            &p.scenario.cache_token(),
            p.n_atoms,
            p.steps,
        );
        for other in [ScenarioSpec::morse_nvt(), ScenarioSpec::coulomb_cutoff()] {
            let moved = crate::cache::point_key(
                1,
                &p.device.cache_token(),
                &other.cache_token(),
                p.n_atoms,
                p.steps,
            );
            assert_ne!(base, moved, "{other:?} must not share {base:?}");
        }
    }

    #[test]
    fn bench_seed_points_are_sorted() {
        let points = bench_seed().points;
        for w in points.windows(2) {
            let a = (w[0].figure, w[0].device.label(), w[0].n_atoms);
            let b = (w[1].figure, w[1].device.label(), w[1].n_atoms);
            assert!(a <= b, "{a:?} !<= {b:?}");
        }
    }

    #[test]
    fn overlapping_points_share_cache_keys() {
        // Table 1's Opteron leg and fig7's 2048-atom Opteron point are the
        // same work; the cache must see one key.
        let t1 = table1().points[0];
        let f7 = fig7()
            .points
            .into_iter()
            .find(|p| p.device == DeviceKind::Opteron && p.n_atoms == 2048)
            .expect("fig7 has a 2048-atom Opteron point");
        assert_eq!(
            crate::cache::point_key(
                1,
                &t1.device.cache_token(),
                &t1.scenario.cache_token(),
                t1.n_atoms,
                t1.steps
            ),
            crate::cache::point_key(
                1,
                &f7.device.cache_token(),
                &f7.scenario.cache_token(),
                f7.n_atoms,
                f7.steps
            ),
        );
    }
}
