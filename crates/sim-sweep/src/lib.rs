//! The parallel sweep engine (DESIGN.md §11): every paper artifact is a
//! [`SweepSpec`] — a typed grid of (device kind, atom count, steps) points —
//! executed concurrently on a worker pool and memoized in a content-addressed
//! on-disk cache under `results/cache/`.
//!
//! Three layers:
//!
//! - [`spec`] declares *what* to run: the figure grids as plain data.
//! - [`engine`] decides *how*: cache lookup, parallel execution through
//!   [`harness::device_metrics`] (the one run-and-collect path in the
//!   workspace), cache store.
//! - [`figures`] renders *output*: byte-identical tables/CSVs from the cached
//!   [`sim_perf::RunMetrics`] records, so a warm cache reproduces the whole
//!   evaluation section without a single device execution.
//!
//! Determinism is the load-bearing property. Devices simulate their own
//! clocks — a run's result is a pure function of (device config, workload) —
//! so the cache never goes stale silently: the key hashes the full device
//! config (including baked-in machine constants, via
//! [`harness::DeviceKind::cache_token`]), the workload, and
//! [`cache::CODE_VERSION_SALT`]. Parallel execution collects in point order,
//! so `--jobs 1` and `--jobs N` produce bitwise-identical reports.

pub mod cache;
pub mod engine;
pub mod figures;
pub mod scaling;
pub mod spec;

pub use cache::{point_key, ResultCache, CACHE_SCHEMA_VERSION, CODE_VERSION_SALT};
pub use engine::{run_sweep, EngineConfig, PointResult, SweepError, SweepReport};
pub use scaling::{
    bench_cluster_json, run_cluster_sweep, strong_scaling, weak_scaling, ClusterPoint,
    ClusterPointResult, ClusterSweepSpec, BENCH_CLUSTER_SCHEMA_VERSION,
};
pub use spec::{registry, SweepPoint, SweepSpec};
