//! Cluster strong/weak-scaling sweeps (DESIGN.md §14): the multi-node
//! counterpart of [`crate::spec`], gridded over node counts instead of
//! device kinds.
//!
//! Two canonical shapes:
//!
//! - **Strong scaling** holds the box fixed ([`STRONG_SCALING_ATOMS`] atoms)
//!   and splits it across 1/2/4/8 nodes. Per-node compute shrinks while the
//!   halo and all-reduce terms do not, so speedup rolls off — the classic
//!   surface-to-volume story the interconnect cost model exists to tell.
//! - **Weak scaling** holds atoms-per-node fixed
//!   ([`WEAK_SCALING_ATOMS_PER_NODE`]) and grows the box with the cluster;
//!   efficiency is the time ratio against the single-node run of the same
//!   per-node workload.
//!
//! Points are memoized in the same content-addressed [`ResultCache`] as the
//! figure sweeps. The key hashes [`harness::ClusterKind::cache_token`],
//! which spells out every interconnect and recovery-policy constant on top
//! of the inner device's token, so retuning a latency or a spare count
//! invalidates exactly the cluster points and nothing else.

use crate::cache::{point_key, ResultCache};
use crate::engine::{EngineConfig, SweepError};
use harness::{cluster_metrics, ClusterKind, DeviceKind};
use sim_perf::RunMetrics;
use std::fmt::Write as _;

/// Node counts every scaling spec sweeps over.
pub const SCALING_NODE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Strong scaling: total atoms, fixed across node counts.
pub const STRONG_SCALING_ATOMS: usize = 2048;

/// Weak scaling: atoms per node, fixed across node counts.
pub const WEAK_SCALING_ATOMS_PER_NODE: usize = 512;

/// Steps per scaling point (matches the CI recovery workload).
pub const SCALING_STEPS: usize = 10;

/// One cluster scaling point: a cluster shape plus a workload.
#[derive(Clone, Copy, Debug)]
pub struct ClusterPoint {
    /// `"strong"` or `"weak"` — which scaling question this point answers.
    pub mode: &'static str,
    pub cluster: ClusterKind,
    pub n_atoms: usize,
    pub steps: usize,
}

/// A named grid of cluster points, the scaling analogue of
/// [`crate::SweepSpec`].
pub struct ClusterSweepSpec {
    pub name: &'static str,
    pub description: &'static str,
    pub points: Vec<ClusterPoint>,
}

/// Fixed-box scaling of `device` over [`SCALING_NODE_COUNTS`].
pub fn strong_scaling(device: DeviceKind) -> ClusterSweepSpec {
    ClusterSweepSpec {
        name: "strong",
        description: "Fixed 2048-atom box split across 1/2/4/8 nodes; \
                      speedup rolls off as halo and all-reduce costs stay \
                      constant while per-node compute shrinks.",
        points: SCALING_NODE_COUNTS
            .iter()
            .map(|&nodes| ClusterPoint {
                mode: "strong",
                cluster: ClusterKind::new(device, nodes),
                n_atoms: STRONG_SCALING_ATOMS,
                steps: SCALING_STEPS,
            })
            .collect(),
    }
}

/// Fixed atoms-per-node scaling of `device` over [`SCALING_NODE_COUNTS`].
pub fn weak_scaling(device: DeviceKind) -> ClusterSweepSpec {
    ClusterSweepSpec {
        name: "weak",
        description: "512 atoms per node as the cluster grows 1/2/4/8 \
                      nodes; efficiency is the single-node time over the \
                      N-node time for the same per-node workload.",
        points: SCALING_NODE_COUNTS
            .iter()
            .map(|&nodes| ClusterPoint {
                mode: "weak",
                cluster: ClusterKind::new(device, nodes),
                n_atoms: WEAK_SCALING_ATOMS_PER_NODE * nodes,
                steps: SCALING_STEPS,
            })
            .collect(),
    }
}

/// One executed (or cache-served) cluster point.
pub struct ClusterPointResult {
    pub point: ClusterPoint,
    pub metrics: RunMetrics,
    pub from_cache: bool,
}

/// Execute a cluster scaling spec through the shared result cache.
///
/// Points run serially in spec order — a scaling spec is four points, and
/// the interesting parallelism already lives inside each cluster run's lane
/// map. Cache keys use [`harness::ClusterKind::cache_token`], disjoint by
/// construction from single-device tokens (every cluster token starts with
/// `cluster:`).
pub fn run_cluster_sweep(
    spec: &ClusterSweepSpec,
    cfg: &EngineConfig,
) -> Result<Vec<ClusterPointResult>, SweepError> {
    // Same open-vs-new split as `run_sweep`: `--no-cache` runs must not
    // create (or sweep) the cache directory.
    let cache = if cfg.use_cache {
        ResultCache::open(cfg.cache_dir.clone())?
    } else {
        ResultCache::new(cfg.cache_dir.clone())
    };
    let mut results = Vec::with_capacity(spec.points.len());
    for p in &spec.points {
        let scn = md_core::scenario::ScenarioSpec::default().cache_token();
        let key = point_key(cfg.salt, &p.cluster.cache_token(), &scn, p.n_atoms, p.steps);
        if cfg.use_cache {
            if let Some(metrics) = cache.load(&key) {
                results.push(ClusterPointResult {
                    point: *p,
                    metrics,
                    from_cache: true,
                });
                continue;
            }
        }
        let sim = md_core::params::SimConfig::reduced_lj(p.n_atoms);
        let (metrics, _) =
            cluster_metrics(p.cluster, &sim, p.steps).map_err(|e| SweepError::Point {
                figure: spec.name,
                device: p.cluster.label(),
                n_atoms: p.n_atoms,
                steps: p.steps,
                message: e.to_string(),
            })?;
        if cfg.use_cache {
            cache.store(&key, &metrics)?;
        }
        results.push(ClusterPointResult {
            point: *p,
            metrics,
            from_cache: false,
        });
    }
    Ok(results)
}

/// Schema of `BENCH_cluster.json`.
pub const BENCH_CLUSTER_SCHEMA_VERSION: u32 = 1;

/// The `BENCH_cluster.json` document: one entry per scaling point, with
/// speedup and parallel efficiency against the 1-node run of the same mode.
///
/// Simulated numbers only — like `BENCH_seed.json` this is a CI-diffable
/// baseline, bitwise reproducible on any host.
pub fn bench_cluster_json(strong: &[ClusterPointResult], weak: &[ClusterPointResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema_version\": {BENCH_CLUSTER_SCHEMA_VERSION},");
    let _ = writeln!(
        out,
        "  \"description\": \"Simulated strong/weak cluster scaling baseline; regenerate with the cluster binary.\","
    );
    out.push_str("  \"benchmarks\": [\n");
    let entries: Vec<String> = strong
        .iter()
        .chain(weak.iter())
        .map(|r| scaling_entry(r, baseline_seconds(r, strong, weak)))
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// The 1-node simulated time of `r`'s own mode — the denominator-free
/// reference both speedup and efficiency are quoted against.
fn baseline_seconds(
    r: &ClusterPointResult,
    strong: &[ClusterPointResult],
    weak: &[ClusterPointResult],
) -> f64 {
    let peers: &[ClusterPointResult] = if r.point.mode == "strong" {
        strong
    } else {
        weak
    };
    peers
        .iter()
        .find(|p| p.point.cluster.nodes == 1)
        .map_or(f64::NAN, |p| p.metrics.sim_seconds)
}

fn scaling_entry(r: &ClusterPointResult, base_s: f64) -> String {
    let nodes = r.point.cluster.nodes;
    let seconds = r.metrics.sim_seconds;
    assert!(
        seconds.is_finite() && seconds > 0.0,
        "{}/{nodes} nodes: bad simulated seconds {seconds}",
        r.point.mode
    );
    assert!(
        base_s.is_finite() && base_s > 0.0,
        "{} scaling has no 1-node baseline",
        r.point.mode
    );
    // Strong scaling: same box, so speedup = t1/tN and efficiency divides
    // by the node count. Weak scaling: the box grows with the cluster, so
    // t1/tN *is* the efficiency (ideal 1.0) and speedup is reported as
    // efficiency × nodes for symmetry.
    let ratio = base_s / seconds;
    let (speedup, efficiency) = if r.point.mode == "strong" {
        (ratio, ratio / nodes_f(nodes))
    } else {
        (ratio * nodes_f(nodes), ratio)
    };
    format!(
        "    {{\"mode\": \"{}\", \"device\": \"{}\", \"nodes\": {nodes}, \"n_atoms\": {}, \"steps\": {}, \"sim_seconds\": {seconds}, \"speedup\": {speedup}, \"efficiency\": {efficiency}}}",
        r.point.mode,
        mdea_trace::escape_json_string(&r.point.cluster.label()),
        r.point.n_atoms,
        r.point.steps,
    )
}

#[allow(clippy::cast_precision_loss)]
fn nodes_f(nodes: usize) -> f64 {
    nodes as f64
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::float_cmp)]

    use super::*;

    fn temp_cfg(tag: &str) -> EngineConfig {
        let dir =
            std::env::temp_dir().join(format!("mdea-cluster-sweep-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        EngineConfig {
            cache_dir: dir,
            ..EngineConfig::default()
        }
    }

    fn tiny_spec() -> ClusterSweepSpec {
        ClusterSweepSpec {
            name: "strong",
            description: "test grid",
            points: [1, 2]
                .iter()
                .map(|&nodes| ClusterPoint {
                    mode: "strong",
                    cluster: ClusterKind::new(DeviceKind::Opteron, nodes),
                    // Big enough that halving the compute dwarfs the added
                    // interconnect cost (the strong-scaling assertion below).
                    n_atoms: 512,
                    steps: 2,
                })
                .collect(),
        }
    }

    #[test]
    fn scaling_specs_cover_the_node_grid() {
        let strong = strong_scaling(DeviceKind::Opteron);
        let weak = weak_scaling(DeviceKind::Opteron);
        assert_eq!(strong.points.len(), SCALING_NODE_COUNTS.len());
        assert_eq!(weak.points.len(), SCALING_NODE_COUNTS.len());
        for (p, &nodes) in strong.points.iter().zip(SCALING_NODE_COUNTS.iter()) {
            assert_eq!(p.cluster.nodes, nodes);
            assert_eq!(p.n_atoms, STRONG_SCALING_ATOMS);
            assert_eq!(p.steps, SCALING_STEPS);
        }
        for (p, &nodes) in weak.points.iter().zip(SCALING_NODE_COUNTS.iter()) {
            assert_eq!(p.cluster.nodes, nodes);
            assert_eq!(p.n_atoms, WEAK_SCALING_ATOMS_PER_NODE * nodes);
        }
    }

    #[test]
    fn cluster_cache_keys_are_disjoint_from_device_keys() {
        let kind = ClusterKind::new(DeviceKind::Opteron, 1);
        let scn = md_core::scenario::ScenarioSpec::default().cache_token();
        let cluster_key = point_key(1, &kind.cache_token(), &scn, 2048, 10);
        let device_key = point_key(1, &DeviceKind::Opteron.cache_token(), &scn, 2048, 10);
        assert_ne!(cluster_key, device_key);
        assert!(kind.cache_token().starts_with("cluster:"));
    }

    #[test]
    fn sweep_executes_then_serves_from_cache_bitwise() {
        let spec = tiny_spec();
        let cfg = temp_cfg("roundtrip");
        let cold = run_cluster_sweep(&spec, &cfg).expect("cold sweep");
        assert!(cold.iter().all(|r| !r.from_cache));
        let warm = run_cluster_sweep(&spec, &cfg).expect("warm sweep");
        assert!(warm.iter().all(|r| r.from_cache));
        for (c, w) in cold.iter().zip(warm.iter()) {
            assert_eq!(c.metrics, w.metrics, "cache round-trip must be bitwise");
        }
        // More nodes on a fixed box cannot be slower than the network-free
        // single node by anything but interconnect cost, and the 1-node
        // cluster pays no interconnect at all.
        assert!(cold[1].metrics.sim_seconds < cold[0].metrics.sim_seconds);
        let _ = std::fs::remove_dir_all(&cfg.cache_dir);
    }

    #[test]
    fn bench_cluster_json_reports_every_point_with_finite_ratios() {
        let spec = tiny_spec();
        let cfg = temp_cfg("json");
        let results = run_cluster_sweep(&spec, &cfg).expect("sweep");
        let doc = bench_cluster_json(&results, &[]);
        assert!(doc.contains("\"schema_version\": 1"));
        assert!(doc.contains("\"mode\": \"strong\""));
        assert!(doc.contains("\"nodes\": 1"));
        assert!(doc.contains("\"nodes\": 2"));
        assert!(doc.contains("\"speedup\": "));
        assert!(doc.contains("\"efficiency\": "));
        let parsed = sim_perf::parse_json(&doc).expect("well-formed JSON");
        let benches = parsed.get("benchmarks").unwrap().as_array().unwrap();
        assert_eq!(benches.len(), 2);
        for b in benches {
            let speedup = b.get("speedup").unwrap().as_number().unwrap();
            assert!(speedup.is_finite() && speedup > 0.0);
        }
        let _ = std::fs::remove_dir_all(&cfg.cache_dir);
    }
}
