//! Sweep execution: cache lookup, parallel device runs, cache store.
//!
//! Every point executes through [`harness::device_metrics`] — the single
//! run-and-collect path in the workspace — so a sweep result is exactly the
//! record a standalone perf run would produce. Results are collected in
//! point order on an order-preserving worker pool, which makes parallel and
//! serial sweeps bitwise-identical (asserted by `tests/sweep_cache.rs`).

use crate::cache::{point_key, ResultCache};
use crate::spec::{SweepPoint, SweepSpec};
use rayon::prelude::*;
use sim_perf::RunMetrics;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Where sweeps memoize results unless told otherwise.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Knobs for one engine invocation.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    pub cache_dir: PathBuf,
    /// `false` disables both lookup and store (`--no-cache`).
    pub use_cache: bool,
    /// The code-version salt folded into every key; tests bump it to
    /// invalidate the world.
    pub salt: u64,
    /// Worker threads: 0 = one per core, 1 = serial.
    pub jobs: usize,
    /// Host threads each *point* may use for its simulated lanes
    /// (DESIGN.md §12): 0 = one per core, 1 = serial lanes. Only honored
    /// when the sweep itself is serial (`jobs == 1`) — see the nested-pool
    /// guard in [`run_sweep`]. Never part of the cache key: lane execution
    /// is bitwise identical at any thread count.
    pub host_threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cache_dir: PathBuf::from(DEFAULT_CACHE_DIR),
            use_cache: true,
            salt: crate::cache::CODE_VERSION_SALT,
            jobs: 0,
            host_threads: 1,
        }
    }
}

/// One completed point: the metrics record plus where it came from.
#[derive(Clone, Debug)]
pub struct PointResult {
    pub point: SweepPoint,
    pub metrics: RunMetrics,
    pub from_cache: bool,
}

/// All results of one spec, in spec order.
#[derive(Clone, Debug)]
pub struct SweepReport {
    pub spec_name: &'static str,
    pub results: Vec<PointResult>,
}

impl SweepReport {
    /// Points served from the cache.
    pub fn hits(&self) -> usize {
        self.results.iter().filter(|r| r.from_cache).count()
    }

    /// Points that ran a device simulation.
    pub fn executed(&self) -> usize {
        self.results.len() - self.hits()
    }

    /// Post-hoc ledger view of the sweep: one `cache` event per point (with
    /// "hit"/"miss" detail) and one phase per point spanning its simulated
    /// seconds, points laid end-to-end in spec order. Built purely from the
    /// finished report, so it cannot perturb the sweep — and a warm sweep's
    /// ledger is byte-identical to the cold one's because cached metrics are
    /// bitwise the metrics the run produced.
    pub fn to_ledger(&self) -> sim_obs::RunLedger {
        let mut led = sim_obs::RunLedger::new(
            self.spec_name,
            &format!("{} sweep points", self.results.len()),
        );
        let mut cursor = 0.0f64;
        for r in &self.results {
            // Scenario identity rides in the event name so ledgers from
            // different scenarios never alias; the faithful default adds
            // nothing, keeping pre-substrate ledgers byte-identical.
            let scenario = if r.point.scenario == Default::default() {
                String::new()
            } else {
                format!("@{}", r.point.scenario.cache_token())
            };
            let name = format!(
                "{}_n{}_s{}{}",
                r.metrics.device, r.point.n_atoms, r.point.steps, scenario
            );
            led.push(sim_obs::LedgerEvent {
                t_s: cursor,
                kind: sim_obs::EventKind::Cache,
                source: "sweep-cache".to_string(),
                name: name.clone(),
                step: None,
                dur_s: None,
                value: None,
                unit: None,
                detail: Some(if r.from_cache { "hit" } else { "miss" }.to_string()),
            });
            led.phase(&r.metrics.device, &name, cursor, r.metrics.sim_seconds);
            cursor += r.metrics.sim_seconds;
        }
        led
    }
}

#[derive(Debug)]
pub enum SweepError {
    /// A device run failed (bad workload for the device, fault exhaustion…).
    Point {
        figure: &'static str,
        device: String,
        n_atoms: usize,
        steps: usize,
        message: String,
    },
    /// Cache or output I/O failed.
    Io(io::Error),
    /// The worker pool could not be built.
    Pool(String),
    /// Rendering a figure from the collected metrics failed.
    Render(harness::HarnessError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Point {
                figure,
                device,
                n_atoms,
                steps,
                message,
            } => write!(
                f,
                "{figure}: {device} at {n_atoms} atoms / {steps} steps failed: {message}"
            ),
            SweepError::Io(e) => write!(f, "cache I/O error: {e}"),
            SweepError::Pool(msg) => write!(f, "worker pool error: {msg}"),
            SweepError::Render(e) => write!(f, "render error: {e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io(e) => Some(e),
            SweepError::Render(e) => Some(e),
            SweepError::Point { .. } | SweepError::Pool(_) => None,
        }
    }
}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> Self {
        SweepError::Io(e)
    }
}

impl From<harness::HarnessError> for SweepError {
    fn from(e: harness::HarnessError) -> Self {
        SweepError::Render(e)
    }
}

/// Run one point's device simulation and collect its metrics record.
fn execute_point(
    p: &SweepPoint,
    par: md_core::device::HostParallelism,
) -> Result<RunMetrics, SweepError> {
    let sim = md_core::params::SimConfig::reduced_lj(p.n_atoms).with_scenario(p.scenario);
    harness::device_metrics_par(p.device, &sim, p.steps, par)
        .map(|(metrics, _)| metrics)
        .map_err(|e| SweepError::Point {
            figure: p.figure,
            device: p.device.label(),
            n_atoms: p.n_atoms,
            steps: p.steps,
            message: e.to_string(),
        })
}

/// Execute a spec: each point is a cache lookup, then (on miss) a device
/// run and a cache store. Points run concurrently on a pool of
/// `cfg.jobs` workers; collection preserves spec order.
pub fn run_sweep(spec: &SweepSpec, cfg: &EngineConfig) -> Result<SweepReport, SweepError> {
    // `open` (not `new`) when caching: sweeps temp files orphaned by a
    // previous writer that died mid-store, so a crashed run can't leak disk
    // forever. `--no-cache` must not even create the directory.
    let cache = if cfg.use_cache {
        ResultCache::open(cfg.cache_dir.clone())?
    } else {
        ResultCache::new(cfg.cache_dir.clone())
    };
    // Nested-pool guard: the sweep and the per-point lane map share one
    // global host-thread budget. A parallel sweep (`jobs != 1`) already
    // spends it at the point level; spinning up another `host_threads`-wide
    // pool inside every worker would multiply the two and oversubscribe the
    // host. So intra-run parallelism is honored only for serial sweeps —
    // results are unaffected either way, lanes are bitwise identical at any
    // thread count.
    let host_par = if cfg.jobs == 1 {
        md_core::device::HostParallelism::from_threads(cfg.host_threads)
    } else {
        md_core::device::HostParallelism::Serial
    };
    let run_point = |p: &SweepPoint| -> Result<(RunMetrics, bool), SweepError> {
        let key = point_key(
            cfg.salt,
            &p.device.cache_token(),
            &p.scenario.cache_token(),
            p.n_atoms,
            p.steps,
        );
        if cfg.use_cache {
            if let Some(metrics) = cache.load(&key) {
                return Ok((metrics, true));
            }
        }
        let metrics = execute_point(p, host_par)?;
        if cfg.use_cache {
            cache.store(&key, &metrics)?;
        }
        Ok((metrics, false))
    };
    let outcomes: Vec<Result<(RunMetrics, bool), SweepError>> = if cfg.jobs == 1 {
        spec.points.iter().map(run_point).collect()
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.jobs)
            .build()
            .map_err(|e| SweepError::Pool(e.to_string()))?;
        pool.install(|| spec.points.par_iter().map(run_point).collect())
    };
    let mut results = Vec::with_capacity(outcomes.len());
    for (p, outcome) in spec.points.iter().zip(outcomes) {
        let (metrics, from_cache) = outcome?;
        results.push(PointResult {
            point: *p,
            metrics,
            from_cache,
        });
    }
    Ok(SweepReport {
        spec_name: spec.name,
        results,
    })
}
