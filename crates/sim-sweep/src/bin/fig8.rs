//! Regenerates Figure 8: fully vs partially multithreaded MD kernel on the
//! Cray MTA-2. A thin `SweepSpec` declaration over the result cache.

use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig8: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::fig8(), &EngineConfig::default())?;
    figures::render_fig8(&report)
}
