//! Regenerates Table 1: performance comparison of the MD calculation,
//! Opteron vs Cell (1 SPE / 8 SPEs / PPE only), 2048 atoms, 10 time steps.
//! A thin `SweepSpec` declaration over the result cache.

use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("table1: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::table1(), &EngineConfig::default())?;
    figures::render_table1(&report)
}
