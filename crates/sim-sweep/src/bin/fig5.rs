//! Regenerates Figure 5: SIMD optimization ladder for the MD kernel on one
//! SPE (runtime of the acceleration computation, 2048 atoms). A thin
//! `SweepSpec` declaration: warm-cache runs render without executing any
//! device simulation.

use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig5: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::fig5(), &EngineConfig::default())?;
    figures::render_fig5(&report)
}
