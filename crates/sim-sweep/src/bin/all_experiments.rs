//! Runs every experiment in sequence (Figure 5, 6, 7, 8, 9 and Table 1),
//! printing each regenerated artifact. This is the one-command reproduction
//! of the paper's evaluation section; see EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison. Each child binary goes through the result
//! cache, so a second invocation replays the whole evaluation without
//! executing a single device simulation.

use harness::HarnessError;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("all_experiments: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), HarnessError> {
    let exe = std::env::current_exe()?;
    let dir = exe.parent().ok_or_else(|| {
        HarnessError::Io(std::io::Error::other("own executable has no parent dir"))
    })?;
    for name in [
        "fig5",
        "fig6",
        "table1",
        "fig7",
        "fig8",
        "fig9",
        "xmt_projection",
    ] {
        let path = dir.join(name);
        println!("\n{0}\n▶ {name}\n{0}", "=".repeat(72));
        let status = Command::new(&path).status()?;
        if !status.success() {
            return Err(HarnessError::ExperimentFailed { name, status });
        }
    }
    println!("\nAll experiments complete. CSVs are under results/.");
    Ok(())
}
