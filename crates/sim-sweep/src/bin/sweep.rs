//! `sweep` — the one CLI over the paper's evaluation grid: list the spec
//! registry, run specs through the cache-backed parallel engine, clean the
//! cache.
//!
//! A cold `sweep run --all` executes every device simulation once; a warm
//! second run serves everything from `results/cache/` and performs zero
//! device executions (`--expect-cached` turns that property into an exit
//! code, which CI checks).

use sim_sweep::{registry, run_sweep, EngineConfig, ResultCache, SweepSpec};
use std::process::ExitCode;

const USAGE: &str = "\
usage: sweep <command> [options]

commands:
  list                     show every sweep spec and its point count
  run [SPEC...] [--all]    execute specs (by name) through the result cache
  clean                    delete every cached point

run options:
  --all            run every spec in the registry
  --no-cache       skip cache lookup and store; always execute
  --jobs N         worker threads (0 = one per core, 1 = serial; default 0)
  --host-threads N host threads per point's simulated lanes (0 = one per
                   core, 1 = serial; default 1). Only honored with
                   --jobs 1 — a parallel sweep already owns the thread
                   budget. Results are identical either way.
  --cache-dir DIR  cache directory (default results/cache)
  --expect-cached  fail if any point executed a device simulation
                   (verifies the cache is warm)
  --scenario SPEC  run the named specs under a different scenario
                   (<potential>/<ensemble>/<precision>, e.g.
                   morse:d1,a2,r1.2/nvt:t0.85,k0.1/native). Cache keys move
                   with the scenario, so warm LJ results are never served.

clean options:
  --cache-dir DIR  cache directory (default results/cache)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sweep: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            Ok(())
        }
        Some("run") => cmd_run(&args[1..]),
        Some("clean") => cmd_clean(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

fn list() {
    println!("available sweep specs:");
    for spec in registry() {
        println!(
            "  {:<12} {:>3} points  {}",
            spec.name,
            spec.len(),
            spec.description
        );
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut cfg = EngineConfig::default();
    let mut names: Vec<String> = Vec::new();
    let mut all = false;
    let mut expect_cached = false;
    let mut scenario: Option<md_core::scenario::ScenarioSpec> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--no-cache" => cfg.use_cache = false,
            "--expect-cached" => expect_cached = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a thread count")?;
                cfg.jobs = v.parse().map_err(|_| format!("bad --jobs value '{v}'"))?;
            }
            "--host-threads" => {
                let v = it.next().ok_or("--host-threads needs a thread count")?;
                cfg.host_threads = v
                    .parse()
                    .map_err(|_| format!("bad --host-threads value '{v}'"))?;
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                cfg.cache_dir = v.into();
            }
            "--scenario" => {
                let v = it.next().ok_or("--scenario needs a spec")?;
                let parsed: md_core::scenario::ScenarioSpec =
                    v.parse().map_err(|e| format!("bad --scenario: {e}"))?;
                parsed
                    .try_validate()
                    .map_err(|e| format!("bad --scenario: {e}"))?;
                scenario = Some(parsed);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            name => names.push(name.to_string()),
        }
    }

    let specs: Vec<SweepSpec> = if all {
        registry()
    } else if names.is_empty() {
        return Err(format!("nothing to run: name specs or pass --all\n{USAGE}"));
    } else {
        let available = registry();
        names
            .iter()
            .map(|name| {
                available
                    .iter()
                    .find(|s| s.name == *name)
                    .cloned()
                    .ok_or_else(|| format!("unknown spec '{name}' (see `sweep list`)"))
            })
            .collect::<Result<_, _>>()?
    };
    let specs: Vec<SweepSpec> = match scenario {
        Some(scn) => specs.into_iter().map(|s| s.with_scenario(scn)).collect(),
        None => specs,
    };

    let mut total_hits = 0;
    let mut total_executed = 0;
    for spec in &specs {
        let report = run_sweep(spec, &cfg).map_err(|e| e.to_string())?;
        println!(
            "{:<12} {:>3} points  {:>3} cached  {:>3} executed",
            report.spec_name,
            report.results.len(),
            report.hits(),
            report.executed()
        );
        total_hits += report.hits();
        total_executed += report.executed();
    }
    println!("total: {total_hits} cached, {total_executed} executed");
    if expect_cached && total_executed > 0 {
        return Err(format!(
            "--expect-cached: {total_executed} point(s) executed a device simulation; the cache was cold"
        ));
    }
    Ok(())
}

fn cmd_clean(args: &[String]) -> Result<(), String> {
    let mut dir = std::path::PathBuf::from(sim_sweep::engine::DEFAULT_CACHE_DIR);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                dir = v.into();
            }
            flag => return Err(format!("unknown flag '{flag}'")),
        }
    }
    let removed = ResultCache::new(dir).clean().map_err(|e| e.to_string())?;
    println!("removed {removed} cached point(s)");
    Ok(())
}
