//! Regenerates Figure 9: increase in runtime relative to the 256-atom run,
//! MTA-2 vs Opteron. A thin `SweepSpec` declaration over the result cache;
//! its absolute-runtime points are shared with fig7/fig8 where the grids
//! overlap, so a prior fig7+fig8 run leaves most of this figure warm.

use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig9: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::fig9(), &EngineConfig::default())?;
    figures::render_fig9(&report)
}
