//! Regenerates Figure 9: increase in runtime relative to the 256-atom run,
//! MTA-2 vs Opteron. A thin `SweepSpec` declaration over the result cache;
//! its absolute-runtime points are shared with fig7/fig8 where the grids
//! overlap, so a prior fig7+fig8 run leaves most of this figure warm.
//!
//! Flags (used by CI's `host-parallel` job to diff a threaded execution
//! against a serial one byte for byte):
//!
//! - `--no-cache` — execute every point; skip cache lookup and store.
//! - `--host-threads N` — run each point's simulated lanes on N host
//!   threads (0 = all cores; results are bitwise identical regardless).

use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args).map_err(SweepError::Io).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig9: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse(args: &[String]) -> Result<EngineConfig, std::io::Error> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
    let mut cfg = EngineConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-cache" => cfg.use_cache = false,
            "--host-threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| bad("--host-threads needs a thread count".into()))?;
                cfg.host_threads = v
                    .parse()
                    .map_err(|_| bad(format!("bad --host-threads value '{v}'")))?;
            }
            other => return Err(bad(format!("unknown flag '{other}'"))),
        }
    }
    if cfg.host_threads != 1 {
        // Intra-run parallelism needs the whole thread budget at lane level
        // (the nested-pool guard in `run_sweep` ignores it otherwise).
        cfg.jobs = 1;
    }
    Ok(cfg)
}

fn run(cfg: EngineConfig) -> Result<(), SweepError> {
    let report = run_sweep(&spec::fig9(), &cfg)?;
    figures::render_fig9(&report)
}
