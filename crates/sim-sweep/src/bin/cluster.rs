//! The `cluster` binary: the CI face of the multi-node simulation
//! (DESIGN.md §14).
//!
//! - `cluster recover [--out PATH]` — the recovery demo the CI
//!   `cluster-recovery` job runs: 2048 atoms × 10 steps on 4 simulated
//!   nodes with node 2 killed mid-run. Asserts the recovered final state is
//!   bitwise identical to the fault-free cluster run *and* to the
//!   single-device run, then writes the recovery-report JSON artifact.
//! - `cluster scaling` — the strong/weak scaling grids over 1/2/4/8 nodes,
//!   memoized in the shared result cache, written to the schema-versioned
//!   `BENCH_cluster.json` baseline.
//! - `cluster all` (the default) — both.

use harness::{run_cluster_supervised, ClusterKind, DeviceKind, SupervisorConfig};
use md_core::device::RunOptions;
use md_core::params::SimConfig;
use sim_sweep::{bench_cluster_json, run_cluster_sweep, scaling, EngineConfig, SweepError};
use std::path::PathBuf;
use std::process::ExitCode;

/// The CI recovery workload: same size as the host benchmark rows.
const RECOVERY_ATOMS: usize = 2048;
const RECOVERY_STEPS: usize = 10;
const RECOVERY_NODES: usize = 4;
/// Which node dies, and during which step its segment fails.
const KILLED_NODE: usize = 2;
const KILL_AT_STEP: u64 = 5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<String> = None;
    let mut out = PathBuf::from("results").join("cluster_recovery.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "recover" | "scaling" | "all" => mode = Some(a.clone()),
            "--out" => match it.next() {
                Some(p) => out = PathBuf::from(p),
                None => return usage("--out needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let mode = mode.unwrap_or_else(|| "all".to_string());
    let result = match mode.as_str() {
        "recover" => recover(&out),
        "scaling" => scaling_bench(),
        _ => recover(&out).and_then(|()| scaling_bench()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cluster: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cluster: {msg}");
    eprintln!("usage: cluster [recover|scaling|all] [--out PATH]");
    ExitCode::FAILURE
}

/// Kill node 2 mid-run and prove recovery changed nothing but the simulated
/// clock: final positions, velocities, and energies must be bitwise equal
/// to the fault-free cluster run, which must be bitwise equal to the
/// single-device run.
fn recover(out: &PathBuf) -> Result<(), SweepError> {
    let sim = SimConfig::reduced_lj(RECOVERY_ATOMS);
    let cfg = SupervisorConfig::default();
    let kind = ClusterKind::new(DeviceKind::Opteron, RECOVERY_NODES);

    let mut single = DeviceKind::Opteron.build();
    let plain = single
        .run(&sim, RunOptions::steps(RECOVERY_STEPS))
        .map_err(|e| SweepError::Point {
            figure: "cluster-recover",
            device: DeviceKind::Opteron.label(),
            n_atoms: RECOVERY_ATOMS,
            steps: RECOVERY_STEPS,
            message: e.to_string(),
        })?;

    let mut clean = kind.build();
    let clean_rec = run_cluster_supervised(&mut clean, &sim, RECOVERY_STEPS, &cfg, None);

    let mut faulted = kind.build();
    faulted.kill_node_at_step(KILLED_NODE, KILL_AT_STEP);
    let rec = run_cluster_supervised(&mut faulted, &sim, RECOVERY_STEPS, &cfg, None);

    assert!(
        rec.recovered_cleanly(),
        "recovery degraded to fallback: {:?}",
        rec.run.report.events
    );
    assert!(rec.migrations >= 1, "the killed node's domain must migrate");
    assert_eq!(
        rec.run.checkpoint.positions, clean_rec.run.checkpoint.positions,
        "positions drifted across node-kill recovery"
    );
    assert_eq!(
        rec.run.checkpoint.velocities, clean_rec.run.checkpoint.velocities,
        "velocities drifted across node-kill recovery"
    );
    assert_eq!(
        clean_rec.run.checkpoint.positions, plain.checkpoint.positions,
        "fault-free cluster drifted from the single device"
    );
    assert_eq!(
        clean_rec.run.checkpoint.velocities, plain.checkpoint.velocities,
        "fault-free cluster velocities drifted from the single device"
    );
    assert!(
        rec.run.energies.total.to_bits() == clean_rec.run.energies.total.to_bits()
            && clean_rec.run.energies.total.to_bits() == plain.energies.total.to_bits(),
        "final energies drifted"
    );

    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(out, rec.to_json())?;
    println!(
        "recover: killed node {KILLED_NODE} at step {KILL_AT_STEP}; {} restore(s), {} migration(s); final state bitwise-identical to fault-free and single-device runs",
        rec.run.report.restores, rec.migrations
    );
    println!("recover: wrote {}", out.display());
    Ok(())
}

/// Run both scaling grids and write the committed baseline.
fn scaling_bench() -> Result<(), SweepError> {
    let cfg = EngineConfig::default();
    let strong = run_cluster_sweep(&scaling::strong_scaling(DeviceKind::Opteron), &cfg)?;
    let weak = run_cluster_sweep(&scaling::weak_scaling(DeviceKind::Opteron), &cfg)?;
    let json = bench_cluster_json(&strong, &weak);
    std::fs::write("BENCH_cluster.json", &json)?;
    let cached = strong
        .iter()
        .chain(weak.iter())
        .filter(|r| r.from_cache)
        .count();
    println!(
        "scaling: wrote BENCH_cluster.json ({} entries, {cached} from cache)",
        strong.len() + weak.len()
    );
    Ok(())
}
