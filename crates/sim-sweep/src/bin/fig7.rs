//! Regenerates Figure 7: GPU vs Opteron runtime across atom counts
//! (GPU startup excluded; per-step PCIe transfers included). A thin
//! `SweepSpec` declaration over the result cache.

use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig7: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::fig7(), &EngineConfig::default())?;
    figures::render_fig7(&report)
}
