//! Regenerates Figure 6: SPE thread-launch overhead on the MD kernel,
//! respawn-every-step vs launch-once, 1 vs 8 SPEs. A thin `SweepSpec`
//! declaration over the result cache.

use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fig6: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::fig6(), &EngineConfig::default())?;
    figures::render_fig6(&report)
}
