//! Regenerates the two committed benchmark baselines:
//!
//! - `BENCH_seed.json` — the *simulated-seconds* baseline for every paper
//!   figure/device at the paper's workload sizes, in deterministic sorted
//!   order. Run from the repo root after any intentional cost-model change
//!   and commit the result; CI and reviewers diff against it to catch
//!   unintended timing drift.
//! - `BENCH_host.json` — the *host wall-clock* snapshot for a single
//!   Opteron-reference run (2048 atoms × 10 steps) at host thread counts
//!   {1, 2, 4, 8}, with speedups against the memo-off serial baseline.
//!   Simulated results are bitwise identical across every row; only wall
//!   time varies, so this file is provenance (which host, how fast), not a
//!   CI-diffable artifact.
//!
//! Each invocation also *appends* the best host row to
//! `BENCH_trajectory.json` (schema-versioned, append-only), so the repo
//! accumulates a performance history across PRs instead of overwriting a
//! single snapshot. `obs check` gates regressions against `BENCH_host.json`;
//! the trajectory is the longitudinal record behind that gate.

use harness::experiments::PAPER_STEPS;
use md_core::device::HostParallelism;
use md_core::params::SimConfig;
use sim_sweep::figures::HostBenchRun;
use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

const HOST_BENCH_ATOMS: usize = 2048;
const HOST_BENCH_STEPS: usize = 10;
/// Wall-clock repetitions per configuration; the minimum is recorded (the
/// standard wall-time statistic — noise only ever adds).
const HOST_BENCH_REPEATS: usize = 3;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_seed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::bench_seed(), &EngineConfig::default())?;
    let json = figures::bench_seed_json(&report, PAPER_STEPS);
    std::fs::write("BENCH_seed.json", &json)?;
    println!(
        "wrote BENCH_seed.json ({} benchmark entries, {} steps each)",
        json.matches("\"figure\"").count(),
        PAPER_STEPS
    );
    cluster_bench()?;
    let entry = host_bench()?;
    append_trajectory(entry)
}

/// Append the host bench's best row to the cross-PR performance history.
/// The timestamp is stamped inside `sim-obs` (the observer layer owns the
/// stack's only `SystemTime` call).
fn append_trajectory(entry: sim_obs::TrajectoryEntry) -> Result<(), SweepError> {
    let path = std::path::Path::new("BENCH_trajectory.json");
    sim_obs::append_entry(path, entry).map_err(std::io::Error::other)?;
    println!("appended BENCH_trajectory.json entry");
    Ok(())
}

/// The cluster strong/weak-scaling baseline rides along with the seed
/// baseline (the `cluster` binary writes the identical bytes — both pull
/// from the same result cache).
fn cluster_bench() -> Result<(), SweepError> {
    let cfg = EngineConfig::default();
    let strong = sim_sweep::run_cluster_sweep(
        &sim_sweep::strong_scaling(harness::DeviceKind::Opteron),
        &cfg,
    )?;
    let weak =
        sim_sweep::run_cluster_sweep(&sim_sweep::weak_scaling(harness::DeviceKind::Opteron), &cfg)?;
    let json = sim_sweep::bench_cluster_json(&strong, &weak);
    std::fs::write("BENCH_cluster.json", &json)?;
    println!(
        "wrote BENCH_cluster.json ({} scaling entries)",
        strong.len() + weak.len()
    );
    Ok(())
}

/// Min-of-N wall-clock for one configuration. The harness does the timing
/// (`device_metrics_host`); this layer only picks the best repetition and
/// checks the bitwise-identity contract across configurations.
fn best_of(
    measure: impl Fn() -> Result<sim_perf::RunMetrics, SweepError>,
) -> Result<(HostBenchRun, f64), SweepError> {
    let mut best: Option<sim_perf::RunMetrics> = None;
    for _ in 0..HOST_BENCH_REPEATS {
        let m = measure()?;
        let faster = best.as_ref().is_none_or(|b| {
            m.derived_value("host_wall_seconds") < b.derived_value("host_wall_seconds")
        });
        if faster {
            best = Some(m);
        }
    }
    let m = best.expect("at least one repetition ran");
    Ok((
        HostBenchRun {
            host_threads: 0, // caller fills in
            wall_seconds: m.derived_value("host_wall_seconds"),
            atom_steps_per_s: m.derived_value("host_atom_steps_per_s"),
        },
        m.sim_seconds,
    ))
}

fn host_bench() -> Result<sim_obs::TrajectoryEntry, SweepError> {
    let sim = SimConfig::reduced_lj(HOST_BENCH_ATOMS);
    let (mut baseline, base_sim_seconds) = best_of(|| {
        harness::opteron_baseline_metrics_host(&sim, HOST_BENCH_STEPS)
            .map(|(m, _)| m)
            .map_err(SweepError::Render)
    })?;
    baseline.host_threads = 1;

    let mut runs = Vec::new();
    for t in [1usize, 2, 4, 8] {
        let (mut r, sim_seconds) = best_of(|| {
            harness::device_metrics_host(
                harness::DeviceKind::Opteron,
                &sim,
                HOST_BENCH_STEPS,
                HostParallelism::from_threads(t),
            )
            .map(|(m, _)| m)
            .map_err(SweepError::Render)
        })?;
        r.host_threads = t;
        // The whole point of the document: every configuration simulates
        // the identical run.
        assert_eq!(
            sim_seconds.to_bits(),
            base_sim_seconds.to_bits(),
            "threads={t}: simulated seconds drifted from the baseline"
        );
        runs.push(r);
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let note = format!(
        "best of {HOST_BENCH_REPEATS} repetitions per row; measured on a {cores}-core host{}",
        if cores == 1 {
            " (thread scaling is flat on one core: the speedup over the baseline comes from the force-evaluation replay memo and the tiled gather kernel)"
        } else {
            ""
        }
    );
    let json = figures::bench_host_json(
        HOST_BENCH_ATOMS,
        HOST_BENCH_STEPS,
        base_sim_seconds,
        baseline,
        &runs,
        &note,
    );
    std::fs::write("BENCH_host.json", &json)?;
    let best = runs
        .iter()
        .map(|r| baseline.wall_seconds / r.wall_seconds)
        .fold(0.0f64, f64::max);
    println!(
        "wrote BENCH_host.json (baseline {:.3}s, best single-run speedup {best:.2}x)",
        baseline.wall_seconds
    );
    let best_run = runs
        .iter()
        .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
        .expect("at least one host-thread row ran");
    Ok(sim_obs::TrajectoryEntry {
        recorded_unix_s: 0, // stamped at append time
        device: "opteron".to_string(),
        n_atoms: HOST_BENCH_ATOMS as u64,
        steps: HOST_BENCH_STEPS as u64,
        sim_seconds: base_sim_seconds,
        host_wall_seconds: best_run.wall_seconds,
        host_atom_steps_per_s: best_run.atom_steps_per_s,
        note: format!(
            "bench_seed host bench, best of {HOST_BENCH_REPEATS} repetitions at host_threads={}",
            best_run.host_threads
        ),
    })
}
