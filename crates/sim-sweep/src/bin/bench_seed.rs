//! Regenerates the two committed benchmark baselines:
//!
//! - `BENCH_seed.json` — the *simulated-seconds* baseline for every paper
//!   figure/device at the paper's workload sizes, in deterministic sorted
//!   order. Run from the repo root after any intentional cost-model change
//!   and commit the result; CI and reviewers diff against it to catch
//!   unintended timing drift.
//! - `BENCH_host.json` — the *host wall-clock* snapshot for every device
//!   (Cell best-config, GPU, MTA full-MT, Opteron) at the reference
//!   workload (2048 atoms × 10 steps): a memo-off serial baseline plus
//!   memoized rows at host thread counts {1, 2, 4, 8}, with speedups
//!   against each device's own baseline (DESIGN.md §17). Simulated results
//!   are bitwise identical across every row of a device; only wall time
//!   varies, so this file is provenance (which host, how fast), not a
//!   CI-diffable artifact.
//!
//! Each invocation also *appends* one best host row per device to
//! `BENCH_trajectory.json` (schema-versioned, append-only), so the repo
//! accumulates a performance history across PRs instead of overwriting a
//! single snapshot. `obs check` gates regressions against `BENCH_host.json`;
//! the trajectory is the longitudinal record behind that gate.

use harness::experiments::PAPER_STEPS;
use harness::DeviceKind;
use md_core::device::HostParallelism;
use md_core::params::SimConfig;
use sim_sweep::figures::{DeviceHostBench, HostBenchRun};
use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

const HOST_BENCH_ATOMS: usize = 2048;
const HOST_BENCH_STEPS: usize = 10;
/// Wall-clock repetitions per configuration; the minimum is recorded (the
/// standard wall-time statistic — noise only ever adds).
const HOST_BENCH_REPEATS: usize = 3;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_seed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::bench_seed(), &EngineConfig::default())?;
    let json = figures::bench_seed_json(&report, PAPER_STEPS);
    std::fs::write("BENCH_seed.json", &json)?;
    println!(
        "wrote BENCH_seed.json ({} benchmark entries, {} steps each)",
        json.matches("\"figure\"").count(),
        PAPER_STEPS
    );
    cluster_bench()?;
    let entries = host_bench()?;
    append_trajectory(entries)
}

/// Append each device's best host row to the cross-PR performance history.
/// The timestamp is stamped inside `sim-obs` (the observer layer owns the
/// stack's only `SystemTime` call).
fn append_trajectory(entries: Vec<sim_obs::TrajectoryEntry>) -> Result<(), SweepError> {
    let path = std::path::Path::new("BENCH_trajectory.json");
    let count = entries.len();
    for entry in entries {
        sim_obs::append_entry(path, entry).map_err(std::io::Error::other)?;
    }
    println!("appended {count} BENCH_trajectory.json entries");
    Ok(())
}

/// The cluster strong/weak-scaling baseline rides along with the seed
/// baseline (the `cluster` binary writes the identical bytes — both pull
/// from the same result cache).
fn cluster_bench() -> Result<(), SweepError> {
    let cfg = EngineConfig::default();
    let strong =
        sim_sweep::run_cluster_sweep(&sim_sweep::strong_scaling(DeviceKind::Opteron), &cfg)?;
    let weak = sim_sweep::run_cluster_sweep(&sim_sweep::weak_scaling(DeviceKind::Opteron), &cfg)?;
    let json = sim_sweep::bench_cluster_json(&strong, &weak);
    std::fs::write("BENCH_cluster.json", &json)?;
    println!(
        "wrote BENCH_cluster.json ({} scaling entries)",
        strong.len() + weak.len()
    );
    Ok(())
}

/// Min-of-N wall-clock for one configuration. The harness does the timing
/// (`device_metrics_host`); this layer only picks the best repetition and
/// checks the bitwise-identity contract across configurations.
fn best_of(
    measure: impl Fn() -> Result<sim_perf::RunMetrics, SweepError>,
) -> Result<(HostBenchRun, f64), SweepError> {
    let mut best: Option<sim_perf::RunMetrics> = None;
    for _ in 0..HOST_BENCH_REPEATS {
        let m = measure()?;
        let faster = best.as_ref().is_none_or(|b| {
            m.derived_value("host_wall_seconds") < b.derived_value("host_wall_seconds")
        });
        if faster {
            best = Some(m);
        }
    }
    let m = best.expect("at least one repetition ran");
    Ok((
        HostBenchRun {
            host_threads: 0, // caller fills in
            wall_seconds: m.derived_value("host_wall_seconds"),
            atom_steps_per_s: m.derived_value("host_atom_steps_per_s"),
        },
        m.sim_seconds,
    ))
}

/// The devices the host bench covers: the paper's four ports, each with a
/// physics-once eval memo and a memo-off interpretive baseline.
fn host_bench_kinds() -> [DeviceKind; 4] {
    [
        DeviceKind::cell_best(),
        DeviceKind::Gpu {
            model: harness::GpuModel::GeForce7900Gtx,
        },
        DeviceKind::Mta {
            mode: mta::ThreadingMode::FullyMultithreaded,
        },
        DeviceKind::Opteron,
    ]
}

/// Bench one device: memo-off serial baseline plus memoized rows per host
/// thread count, with the physics-once bitwise contract asserted between
/// every pair of rows.
fn host_bench_device(kind: DeviceKind, sim: &SimConfig) -> Result<DeviceHostBench, SweepError> {
    let label = kind.label();
    let (mut baseline, base_sim_seconds) = best_of(|| {
        harness::device_baseline_metrics_host(kind, sim, HOST_BENCH_STEPS, HostParallelism::Serial)
            .map(|(m, _)| m)
            .map_err(SweepError::Render)
    })?;
    baseline.host_threads = 1;

    let mut runs = Vec::new();
    for t in [1usize, 2, 4, 8] {
        let (mut r, sim_seconds) = best_of(|| {
            harness::device_metrics_host(
                kind,
                sim,
                HOST_BENCH_STEPS,
                HostParallelism::from_threads(t),
            )
            .map(|(m, _)| m)
            .map_err(SweepError::Render)
        })?;
        r.host_threads = t;
        // The whole point of the document: every configuration — memo on or
        // off, at any thread count — simulates the identical run.
        assert_eq!(
            sim_seconds.to_bits(),
            base_sim_seconds.to_bits(),
            "{label} threads={t}: simulated seconds drifted from the memo-off baseline"
        );
        runs.push(r);
    }
    let best = runs
        .iter()
        .map(|r| baseline.wall_seconds / r.wall_seconds)
        .fold(0.0f64, f64::max);
    println!(
        "  {label}: baseline {:.3}s, best single-run speedup {best:.2}x",
        baseline.wall_seconds
    );
    Ok(DeviceHostBench {
        device: label,
        sim_seconds: base_sim_seconds,
        baseline,
        runs,
    })
}

fn host_bench() -> Result<Vec<sim_obs::TrajectoryEntry>, SweepError> {
    let sim = SimConfig::reduced_lj(HOST_BENCH_ATOMS);
    let mut devices = Vec::new();
    for kind in host_bench_kinds() {
        devices.push(host_bench_device(kind, &sim)?);
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let note = format!(
        "best of {HOST_BENCH_REPEATS} repetitions per row; measured on a {cores}-core host{}",
        if cores == 1 {
            " (thread scaling is flat on one core: the speedup over each baseline comes from the physics-once shared evaluator)"
        } else {
            ""
        }
    );
    let json = figures::bench_host_json(HOST_BENCH_ATOMS, HOST_BENCH_STEPS, &devices, &note);
    std::fs::write("BENCH_host.json", &json)?;
    println!("wrote BENCH_host.json ({} devices)", devices.len());

    Ok(devices
        .iter()
        .map(|dev| {
            let best_run = dev
                .runs
                .iter()
                .min_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds))
                .expect("at least one host-thread row ran");
            sim_obs::TrajectoryEntry {
                recorded_unix_s: 0, // stamped at append time
                device: dev.device.clone(),
                n_atoms: HOST_BENCH_ATOMS as u64,
                steps: HOST_BENCH_STEPS as u64,
                sim_seconds: dev.sim_seconds,
                host_wall_seconds: best_run.wall_seconds,
                host_atom_steps_per_s: best_run.atom_steps_per_s,
                note: format!(
                    "bench_seed host bench, best of {HOST_BENCH_REPEATS} repetitions at host_threads={}",
                    best_run.host_threads
                ),
            }
        })
        .collect())
}
