//! Regenerates `BENCH_seed.json`: the simulated-seconds baseline for every
//! paper figure/device at the paper's workload sizes, in deterministic
//! sorted order. Run from the repo root after any intentional cost-model
//! change and commit the result; CI and reviewers diff against it to catch
//! unintended timing drift.

use harness::experiments::PAPER_STEPS;
use sim_sweep::{figures, run_sweep, spec, EngineConfig, SweepError};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_seed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), SweepError> {
    let report = run_sweep(&spec::bench_seed(), &EngineConfig::default())?;
    let json = figures::bench_seed_json(&report, PAPER_STEPS);
    std::fs::write("BENCH_seed.json", &json)?;
    println!(
        "wrote BENCH_seed.json ({} benchmark entries, {} steps each)",
        json.matches("\"figure\"").count(),
        PAPER_STEPS
    );
    Ok(())
}
