//! Engine-level cache and determinism guarantees (ISSUE: sweep tentpole).
//!
//! Workloads here are deliberately small — the properties under test
//! (hit/miss accounting, corruption fallback, salt invalidation, parallel
//! vs serial bitwise identity) don't depend on paper-scale grids.

use harness::{DeviceKind, GpuModel};
use sim_perf::RunMetrics;
use sim_sweep::{point_key, run_sweep, EngineConfig, ResultCache, SweepPoint, SweepSpec};
use std::path::{Path, PathBuf};

/// A miniature fig7-shaped grid: Opteron + GPU per size, size-major.
fn small_fig7_spec() -> SweepSpec {
    let mut points = Vec::new();
    for n_atoms in [108usize, 256, 500] {
        for device in [
            DeviceKind::Opteron,
            DeviceKind::Gpu {
                model: GpuModel::GeForce7900Gtx,
            },
        ] {
            points.push(SweepPoint {
                figure: "fig7",
                device,
                n_atoms,
                steps: 1,
                scenario: Default::default(),
            });
        }
    }
    SweepSpec {
        name: "fig7-small",
        description: "test grid",
        points,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdea-sweep-engine-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &Path) -> EngineConfig {
    EngineConfig {
        cache_dir: dir.to_path_buf(),
        ..EngineConfig::default()
    }
}

fn metrics_of(report: &sim_sweep::SweepReport) -> Vec<RunMetrics> {
    report.results.iter().map(|r| r.metrics.clone()).collect()
}

#[test]
fn cold_run_misses_warm_run_hits_with_identical_metrics() {
    let dir = temp_dir("hit-miss");
    let spec = small_fig7_spec();

    let cold = run_sweep(&spec, &cfg(&dir)).expect("cold run");
    assert_eq!(cold.executed(), spec.len());
    assert_eq!(cold.hits(), 0);

    let warm = run_sweep(&spec, &cfg(&dir)).expect("warm run");
    assert_eq!(warm.hits(), spec.len(), "every point must be served warm");
    assert_eq!(warm.executed(), 0);

    // Cache round trip is bit-exact, not approximate.
    assert_eq!(metrics_of(&cold), metrics_of(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entry_recomputes_instead_of_panicking() {
    let dir = temp_dir("corrupt");
    let spec = small_fig7_spec();
    let engine = cfg(&dir);

    let cold = run_sweep(&spec, &engine).expect("cold run");

    // Vandalize one entry; the rest stay warm.
    let victim = &spec.points[0];
    let cache = ResultCache::new(dir.clone());
    let key = point_key(
        engine.salt,
        &victim.device.cache_token(),
        &victim.scenario.cache_token(),
        victim.n_atoms,
        victim.steps,
    );
    std::fs::write(cache.path_for(&key), "{ this is not JSON").expect("corrupt the entry");

    let repaired = run_sweep(&spec, &engine).expect("run over a corrupt cache");
    assert_eq!(repaired.executed(), 1, "only the corrupt point recomputes");
    assert_eq!(repaired.hits(), spec.len() - 1);
    assert_eq!(metrics_of(&cold), metrics_of(&repaired));

    // The recompute healed the entry on disk.
    let healed = run_sweep(&spec, &engine).expect("healed run");
    assert_eq!(healed.hits(), spec.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn salt_bump_invalidates_every_cached_point() {
    let dir = temp_dir("salt");
    let spec = small_fig7_spec();
    let engine = cfg(&dir);

    run_sweep(&spec, &engine).expect("cold run");
    let bumped = EngineConfig {
        salt: engine.salt + 1,
        ..engine
    };
    let invalidated = run_sweep(&spec, &bumped).expect("bumped run");
    assert_eq!(
        invalidated.executed(),
        spec.len(),
        "a salt bump must stale the whole cache"
    );
    assert_eq!(invalidated.hits(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_and_serial_sweeps_are_bitwise_identical() {
    let spec = small_fig7_spec();
    let no_cache = |jobs| EngineConfig {
        cache_dir: temp_dir("unused"),
        use_cache: false,
        jobs,
        ..EngineConfig::default()
    };

    let serial = run_sweep(&spec, &no_cache(1)).expect("serial run");
    let parallel = run_sweep(&spec, &no_cache(4)).expect("parallel run");
    assert_eq!(serial.executed(), spec.len());
    assert_eq!(parallel.executed(), spec.len());
    assert_eq!(
        metrics_of(&serial),
        metrics_of(&parallel),
        "worker count must not change a single bit of any result"
    );
}

#[test]
fn no_cache_runs_leave_no_files_behind() {
    let dir = temp_dir("no-cache");
    let spec = small_fig7_spec();
    let engine = EngineConfig {
        cache_dir: dir.clone(),
        use_cache: false,
        ..EngineConfig::default()
    };
    let report = run_sweep(&spec, &engine).expect("uncached run");
    assert_eq!(report.executed(), spec.len());
    assert!(!dir.exists(), "--no-cache must not create the cache dir");
}
