//! Shared helpers for the Criterion benchmark suite.
//!
//! Two kinds of benches coexist here:
//!
//! - **Host benches** (`kernels`, `ablation_neighbor`): ordinary Criterion
//!   wall-clock measurements of the real `md_core` kernels on the machine
//!   running the suite.
//! - **Simulated-device benches** (`fig5_*`, `fig6_*`, `table1_*`, `fig7_*`,
//!   `fig8_*`, `fig9_*`, `ablation_devices`): the measured quantity is the
//!   *simulated* runtime the device model produces, injected into Criterion
//!   through `iter_custom`. Criterion then renders per-figure comparisons in
//!   the units the paper plots (device seconds), with the usual statistical
//!   machinery degenerating gracefully because the simulators are exactly
//!   deterministic.

use criterion::Criterion;
use std::time::Duration;

/// Criterion configured for the deterministic simulated-device benches:
/// minimal sampling (the measurement is exact), short measurement windows.
pub fn sim_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        // Deterministic measurements give plotters NaN axis ranges in the
        // cross-parameter charts; the tabular report is what matters here.
        .without_plots()
        .configure_from_args()
}

/// Criterion configured for real host-kernel measurements.
pub fn host_criterion() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args()
}

/// Convert a simulated-seconds quantity into the `Duration` Criterion's
/// `iter_custom` expects, scaled by the iteration count.
///
/// A deterministic, sub-ppm jitter (keyed on the iteration count) is mixed
/// in: Criterion's bootstrap statistics assert non-NaN variance estimates,
/// which exactly-zero-variance samples — the natural output of a
/// deterministic simulator — violate. The jitter is ≤ 1.2e-5 relative, far
/// below any reported digit.
pub fn sim_duration(sim_seconds: f64, iters: u64) -> Duration {
    let jitter = 1.0 + (iters % 13) as f64 * 1e-6;
    Duration::from_secs_f64(sim_seconds * iters as f64 * jitter)
}
