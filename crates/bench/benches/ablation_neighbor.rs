//! Ablation: what the paper left on the table by not using neighbor
//! structures. Real host wall-clock of the O(N²) kernel vs the Verlet
//! pairlist vs cell lists, at sizes where the asymptotics separate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_core::prelude::*;
use mdea_bench::host_criterion;
use std::hint::black_box;

fn neighbor_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_neighbor");
    for &n in &[500usize, 2048] {
        let cfg = SimConfig::reduced_lj(n);
        let sys: ParticleSystem<f64> = md_core::init::initialize(&cfg);
        let params = cfg.substrate::<f64>();

        group.bench_with_input(BenchmarkId::new("all-pairs-n2", n), &n, |b, _| {
            let mut s = sys.clone();
            let mut k = AllPairsHalfKernel;
            b.iter(|| black_box(k.compute(&mut s, &params)));
        });
        group.bench_with_input(BenchmarkId::new("neighbor-list", n), &n, |b, _| {
            let mut s = sys.clone();
            let mut k = NeighborListKernel::with_default_skin();
            // Build once outside the measurement loop, as production MD does
            // (the list is reused for ~10-20 steps between rebuilds).
            k.compute(&mut s, &params);
            b.iter(|| black_box(k.compute(&mut s, &params)));
        });
        group.bench_with_input(BenchmarkId::new("cell-list", n), &n, |b, _| {
            let mut s = sys.clone();
            let mut k = CellListKernel::new();
            b.iter(|| black_box(k.compute(&mut s, &params)));
        });
    }
    group.finish();
}

criterion_group!(name = benches; config = host_criterion(); targets = neighbor_ablation);
criterion_main!(benches);
