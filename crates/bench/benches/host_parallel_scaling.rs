//! Host wall-clock scaling of a *single* device run (DESIGN.md §12).
//!
//! Unlike the `fig*` benches this measures real host time, not simulated
//! seconds: the quantity under test is how fast the host can execute one
//! Opteron-reference 2048-atom / 10-step run. The baseline is the same run
//! with the force-evaluation replay memo disabled — the full O(N²) cache
//! replay per evaluation — which is what the host-parallel work optimizes
//! away. Every configuration returns bitwise-identical simulated results
//! (`tests/host_parallel.rs`); only wall-clock differs here.
//!
//! On single-core hosts the `threads` series is flat: the win comes from the
//! replay memo and the tiled gather kernel, not from thread fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_core::device::{MdDevice, RunOptions};
use md_core::params::SimConfig;
use mdea_bench::host_criterion;
use opteron::OpteronCpu;

const N_ATOMS: usize = 2048;
const STEPS: usize = 10;

fn host_parallel_scaling(c: &mut Criterion) {
    let sim = SimConfig::reduced_lj(N_ATOMS);
    let mut group = c.benchmark_group("host_parallel_scaling");
    group.bench_function("baseline_memo_off_serial", |b| {
        b.iter(|| {
            let mut cpu = OpteronCpu::paper_reference();
            cpu.set_trace_memo(false);
            cpu.run(&sim, RunOptions::steps(STEPS))
                .expect("reference CPU runs")
        });
    });
    for t in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| {
                OpteronCpu::paper_reference()
                    .run(&sim, RunOptions::steps(STEPS).with_host_threads(t))
                    .expect("reference CPU runs")
            });
        });
    }
    group.finish();
}

criterion_group!(name = benches; config = host_criterion(); targets = host_parallel_scaling);
criterion_main!(benches);
