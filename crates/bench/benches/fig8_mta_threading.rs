//! Figure 8 as a Criterion bench: fully vs partially multithreaded MD on the
//! MTA-2 across atom counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_core::device::{MdDevice, RunOptions};
use md_core::params::SimConfig;
use mdea_bench::{sim_criterion, sim_duration};
use mta::{MtaMd, ThreadingMode};

fn fig8(c: &mut Criterion) {
    let steps = 4;
    let mut group = c.benchmark_group("fig8_mta_threading");
    for &n in &[256usize, 512, 1024, 2048] {
        let sim = SimConfig::reduced_lj(n);
        group.bench_with_input(BenchmarkId::new("fully-mt", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let run = MtaMd::paper_mta2(ThreadingMode::FullyMultithreaded)
                    .run(&sim, RunOptions::steps(steps))
                    .expect("MTA model runs any workload");
                sim_duration(run.sim_seconds, iters)
            });
        });
        group.bench_with_input(BenchmarkId::new("partially-mt", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let run = MtaMd::paper_mta2(ThreadingMode::PartiallyMultithreaded)
                    .run(&sim, RunOptions::steps(steps))
                    .expect("MTA model runs any workload");
                sim_duration(run.sim_seconds, iters)
            });
        });
    }
    group.finish();
}

criterion_group!(name = benches; config = sim_criterion(); targets = fig8);
criterion_main!(benches);
