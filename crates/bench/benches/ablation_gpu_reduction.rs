//! Ablation: the paper's PE-reduction design decision on the GPU.
//!
//! "One option is to introduce one or more additional passes to accumulate
//! each atom's contribution to the total PE ... However, this method
//! introduces significant overheads. Instead ... read back each atom's
//! contribution to PE as well and sum them in linear time on the CPU."
//!
//! This bench measures both strategies so the claim is quantified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu::{GpuMdSimulation, ReductionStrategy};
use md_core::params::SimConfig;
use mdea_bench::{sim_criterion, sim_duration};

fn gpu_reduction(c: &mut Criterion) {
    let steps = 4;
    let runner = GpuMdSimulation::geforce_7900gtx();
    let mut group = c.benchmark_group("ablation_gpu_reduction");
    for &n in &[256usize, 1024, 2048] {
        let sim = SimConfig::reduced_lj(n);
        group.bench_with_input(BenchmarkId::new("cpu-readback", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let run = runner.run_md_with(&sim, steps, ReductionStrategy::CpuReadback);
                sim_duration(run.sim_seconds, iters)
            });
        });
        group.bench_with_input(BenchmarkId::new("gpu-multipass", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let run = runner.run_md_with(&sim, steps, ReductionStrategy::GpuMultiPass);
                sim_duration(run.sim_seconds, iters)
            });
        });
    }
    group.finish();
}

criterion_group!(name = benches; config = sim_criterion(); targets = gpu_reduction);
criterion_main!(benches);
