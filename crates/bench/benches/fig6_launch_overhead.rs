//! Figure 6 as a Criterion bench: total simulated runtime of the four SPE
//! thread-management configurations (1/8 SPEs × respawn/launch-once).

use cell_be::{CellMd, CellRunConfig, SpawnPolicy, SpeKernelVariant};
use criterion::{criterion_group, criterion_main, Criterion};
use md_core::device::{MdDevice, RunOptions};
use md_core::params::SimConfig;
use mdea_bench::{sim_criterion, sim_duration};

fn fig6(c: &mut Criterion) {
    let sim = SimConfig::reduced_lj(1024);
    let steps = 10;

    let mut group = c.benchmark_group("fig6_launch_overhead");
    for (label, n_spes, policy) in [
        ("respawn/1spe", 1usize, SpawnPolicy::RespawnEveryStep),
        ("respawn/8spe", 8, SpawnPolicy::RespawnEveryStep),
        ("launch-once/1spe", 1, SpawnPolicy::LaunchOnce),
        ("launch-once/8spe", 8, SpawnPolicy::LaunchOnce),
    ] {
        group.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let run = CellMd::paper_blade(CellRunConfig {
                    n_spes,
                    policy,
                    variant: SpeKernelVariant::SimdAcceleration,
                })
                .run(&sim, RunOptions::steps(steps))
                .expect("fits local store");
                sim_duration(run.sim_seconds, iters)
            });
        });
    }
    group.finish();
}

criterion_group!(name = benches; config = sim_criterion(); targets = fig6);
criterion_main!(benches);
