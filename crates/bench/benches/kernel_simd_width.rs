//! SIMD-width ablation of the shared force evaluator (DESIGN.md §17):
//! the scalar interpretive gather row versus the wide physics-once row, on
//! real host hardware.
//!
//! Both paths compute bitwise-identical rows (`md_core::shared_eval`'s
//! contract, pinned in its unit tests); what this bench measures is the
//! wall-clock value of batching the distance pass across lanes and
//! early-skipping non-interacting blocks — i.e. the host-side speedup the
//! eval memo buys every device at a given atom count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_core::forces::{gather_row, SoaPositions};
use md_core::params::SimConfig;
use md_core::shared_eval::{self, SoaPositionsF32};
use md_core::system::ParticleSystem;
use mdea_bench::host_criterion;
use std::hint::black_box;

/// One full evaluation: every atom's row, summed interactions as the
/// live output (keeps the optimizer honest without allocating).
fn eval_host(
    soa: &SoaPositions<f64>,
    n: usize,
    l: f64,
    sub: &md_core::scenario::Substrate<f64>,
) -> u64 {
    let mut total = 0u64;
    for i in 0..n {
        total += gather_row(soa, i, l, sub, 1.0).interactions;
    }
    total
}

fn eval_host_wide(
    soa: &SoaPositions<f64>,
    n: usize,
    l: f64,
    sub: &md_core::scenario::Substrate<f64>,
) -> u64 {
    let mut total = 0u64;
    for i in 0..n {
        total += shared_eval::host_row(soa, i, l, sub, 1.0).interactions;
    }
    total
}

fn kernel_simd_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_simd_width");
    for &n in &[864usize, 2048] {
        let cfg = SimConfig::reduced_lj(n);
        let sys: ParticleSystem<f64> = md_core::init::initialize(&cfg);
        let sub = cfg.substrate::<f64>();
        let l = sys.box_len;
        let soa = SoaPositions::from_positions(&sys.positions);

        group.bench_with_input(BenchmarkId::new("scalar-gather", n), &n, |b, _| {
            b.iter(|| black_box(eval_host(&soa, n, l, &sub)));
        });
        group.bench_with_input(BenchmarkId::new("wide-4", n), &n, |b, _| {
            b.iter(|| black_box(eval_host_wide(&soa, n, l, &sub)));
        });

        // The f32 flavors the Cell and GPU memos ride on (8 lanes wide).
        let sys32: ParticleSystem<f32> = sys.convert();
        let sub32 = cfg.substrate::<f32>();
        let l32 = sys32.box_len;
        let soa32 =
            SoaPositionsF32::from_quads(sys32.positions.iter().map(|p| [p.x, p.y, p.z, 0.0]));
        group.bench_with_input(BenchmarkId::new("wide-8-cell", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..n {
                    acc += shared_eval::cell_row(&soa32, i, l32, &sub32, 1.0).interactions;
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("wide-8-gpu", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for i in 0..n {
                    acc += shared_eval::gpu_texel(&soa32, i, l32, &sub32, 1.0)[3];
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(name = simd_width; config = host_criterion(); targets = kernel_simd_width);
criterion_main!(simd_width);
