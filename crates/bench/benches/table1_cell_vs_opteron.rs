//! Table 1 as a Criterion bench: simulated total runtime of the four systems
//! (Opteron, Cell 1 SPE, Cell 8 SPEs, Cell PPE-only) on the MD workload.

use cell_be::{CellMd, CellPpeMd, CellRunConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use md_core::device::{MdDevice, RunOptions};
use md_core::params::SimConfig;
use mdea_bench::{sim_criterion, sim_duration};
use opteron::OpteronCpu;

fn table1(c: &mut Criterion) {
    // 1024 atoms / 4 steps keeps samples fast; the comparison structure is
    // the paper's (the sweep binary runs the full 2048/10).
    let sim = SimConfig::reduced_lj(1024);
    let steps = 4;

    let mut group = c.benchmark_group("table1");
    group.bench_function("opteron", |b| {
        b.iter_custom(|iters| {
            let run = OpteronCpu::paper_reference()
                .run(&sim, RunOptions::steps(steps))
                .expect("reference CPU runs");
            sim_duration(run.sim_seconds, iters)
        });
    });
    group.bench_function("cell-1spe", |b| {
        b.iter_custom(|iters| {
            let run = CellMd::paper_blade(CellRunConfig::single_spe())
                .run(&sim, RunOptions::steps(steps))
                .expect("fits local store");
            sim_duration(run.sim_seconds, iters)
        });
    });
    group.bench_function("cell-8spe", |b| {
        b.iter_custom(|iters| {
            let run = CellMd::paper_blade(CellRunConfig::best())
                .run(&sim, RunOptions::steps(steps))
                .expect("fits local store");
            sim_duration(run.sim_seconds, iters)
        });
    });
    group.bench_function("cell-ppe-only", |b| {
        b.iter_custom(|iters| {
            let run = CellPpeMd::paper_blade()
                .run(&sim, RunOptions::steps(steps))
                .expect("the PPE runs any workload");
            sim_duration(run.sim_seconds, iters)
        });
    });
    group.finish();
}

criterion_group!(name = benches; config = sim_criterion(); targets = table1);
criterion_main!(benches);
