//! Figure 7 as a Criterion bench: GPU vs Opteron simulated runtime across
//! atom counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu::GpuMdSimulation;
use md_core::device::{MdDevice, RunOptions};
use md_core::params::SimConfig;
use mdea_bench::{sim_criterion, sim_duration};
use opteron::OpteronCpu;

fn fig7(c: &mut Criterion) {
    let steps = 4;
    let mut group = c.benchmark_group("fig7_gpu_vs_opteron");
    for &n in &[128usize, 256, 512, 1024, 2048] {
        let sim = SimConfig::reduced_lj(n);
        group.bench_with_input(BenchmarkId::new("opteron", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let run = OpteronCpu::paper_reference()
                    .run(&sim, RunOptions::steps(steps))
                    .expect("reference CPU runs");
                sim_duration(run.sim_seconds, iters)
            });
        });
        group.bench_with_input(BenchmarkId::new("gpu", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let run = GpuMdSimulation::geforce_7900gtx()
                    .run(&sim, RunOptions::steps(steps))
                    .expect("GPU model runs any workload");
                sim_duration(run.sim_seconds, iters)
            });
        });
    }
    group.finish();
}

criterion_group!(name = benches; config = sim_criterion(); targets = fig7);
criterion_main!(benches);
