//! Device-model ablations beyond the paper's configurations:
//!
//! - SPE count sweep (1..8): how Cell speedup scales with SPEs.
//! - XMT projection (the paper's "we anticipate significant performance
//!   gains from the upcoming XMT"): MTA-2 vs XMT at 1 and 16 processors.
//!
//! Non-paper configurations (XMT, tuned Opterons) have no `DeviceKind`, so
//! they are driven through the `MdDevice` adapters directly.

use cell_be::{CellMd, CellRunConfig, SpawnPolicy, SpeKernelVariant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_core::device::{MdDevice, RunOptions};
use md_core::params::SimConfig;
use mdea_bench::{sim_criterion, sim_duration};
use mta::{MtaConfig, MtaMd, MtaMdSimulation, ThreadingMode};
use opteron::{OpteronConfig, OpteronCpu};

fn spe_count_sweep(c: &mut Criterion) {
    let sim = SimConfig::reduced_lj(1024);
    let steps = 4;
    let mut group = c.benchmark_group("ablation_spe_count");
    for n_spes in 1..=8usize {
        group.bench_with_input(BenchmarkId::from_parameter(n_spes), &n_spes, |b, _| {
            b.iter_custom(|iters| {
                let run = CellMd::paper_blade(CellRunConfig {
                    n_spes,
                    policy: SpawnPolicy::LaunchOnce,
                    variant: SpeKernelVariant::SimdAcceleration,
                })
                .run(&sim, RunOptions::steps(steps))
                .expect("fits local store");
                sim_duration(run.sim_seconds, iters)
            });
        });
    }
    group.finish();
}

fn xmt_projection(c: &mut Criterion) {
    let sim = SimConfig::reduced_lj(1024);
    let steps = 4;
    let mut group = c.benchmark_group("ablation_xmt");
    for (label, config) in [
        ("mta2-1proc", MtaConfig::paper_mta2()),
        ("xmt-1proc", MtaConfig::xmt(1)),
        ("xmt-16proc", MtaConfig::xmt(16)),
        // The paper's caution about the XMT's non-uniform memory: the same
        // locality-blind gather loop with 80% remote references vs blocked
        // data placement at 5%.
        (
            "xmt-16proc-locality-blind",
            MtaConfig::xmt_nonuniform(16, 0.8),
        ),
        ("xmt-16proc-placed", MtaConfig::xmt_nonuniform(16, 0.05)),
    ] {
        let mut m = MtaMd::new(
            MtaMdSimulation::new(config),
            ThreadingMode::FullyMultithreaded,
        );
        group.bench_function(label, move |b| {
            b.iter_custom(|iters| {
                let run = m
                    .run(&sim, RunOptions::steps(steps))
                    .expect("MTA model runs any workload");
                sim_duration(run.sim_seconds, iters)
            });
        });
    }
    group.finish();
}

fn gpu_generations(c: &mut Criterion) {
    // "the parallelism is increasing": 6800 (16 pipes, 400 MHz) vs 7900GTX
    // (24 pipes, 650 MHz) on the same workload.
    let sim = SimConfig::reduced_lj(1024);
    let steps = 4;
    let mut group = c.benchmark_group("ablation_gpu_generations");
    for (label, runner) in [
        ("geforce-6800", gpu::GpuMdSimulation::geforce_6800()),
        ("geforce-7900gtx", gpu::GpuMdSimulation::geforce_7900gtx()),
    ] {
        let mut runner = runner;
        group.bench_function(label, move |b| {
            b.iter_custom(|iters| {
                let run = runner
                    .run(&sim, RunOptions::steps(steps))
                    .expect("GPU model runs any workload");
                sim_duration(run.sim_seconds, iters)
            });
        });
    }
    group.finish();
}

fn opteron_variants(c: &mut Criterion) {
    // Host-baseline ablations: what a tuned (SSE2) build or the K8's stream
    // prefetcher would have done to the paper's reference numbers.
    let steps = 2;
    let mut group = c.benchmark_group("ablation_opteron");
    for &n in &[1024usize, 4096] {
        let sim = SimConfig::reduced_lj(n);
        for (label, cfg) in [
            ("scalar", OpteronConfig::paper_reference()),
            ("sse2", OpteronConfig::sse2_vectorized()),
            ("prefetch", OpteronConfig::with_prefetcher()),
        ] {
            let mut cpu = OpteronCpu::new(cfg);
            group.bench_with_input(BenchmarkId::new(label, n), &n, move |b, _| {
                b.iter_custom(|iters| {
                    let run = cpu
                        .run(&sim, RunOptions::steps(steps))
                        .expect("reference CPU runs");
                    sim_duration(run.sim_seconds, iters)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(name = benches; config = sim_criterion(); targets = spe_count_sweep, xmt_projection, gpu_generations, opteron_variants);
criterion_main!(benches);
