//! Host-hardware benchmarks of the real MD force kernels — what the paper's
//! question ("how fast can this kernel go?") looks like on today's machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_core::prelude::*;
use mdea_bench::host_criterion;
use std::hint::black_box;

fn force_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_eval");
    for &n in &[256usize, 864] {
        let cfg = SimConfig::reduced_lj(n);
        let sys: ParticleSystem<f64> = md_core::init::initialize(&cfg);
        let params = cfg.substrate::<f64>();

        group.bench_with_input(BenchmarkId::new("all-pairs-half", n), &n, |b, _| {
            let mut s = sys.clone();
            let mut k = AllPairsHalfKernel;
            b.iter(|| black_box(k.compute(&mut s, &params)));
        });
        group.bench_with_input(BenchmarkId::new("all-pairs-full", n), &n, |b, _| {
            let mut s = sys.clone();
            let mut k = AllPairsFullKernel;
            b.iter(|| black_box(k.compute(&mut s, &params)));
        });
        group.bench_with_input(BenchmarkId::new("rayon", n), &n, |b, _| {
            let mut s = sys.clone();
            let mut k = RayonKernel;
            b.iter(|| black_box(k.compute(&mut s, &params)));
        });
        group.bench_with_input(BenchmarkId::new("neighbor-list", n), &n, |b, _| {
            let mut s = sys.clone();
            let mut k = NeighborListKernel::with_default_skin();
            b.iter(|| black_box(k.compute(&mut s, &params)));
        });
    }
    group.finish();
}

fn precision(c: &mut Criterion) {
    // The paper's single- vs double-precision split (f32 on Cell/GPU, f64 on
    // MTA/Opteron) measured on host hardware.
    let mut group = c.benchmark_group("precision");
    let cfg = SimConfig::reduced_lj(864);
    let sys64: ParticleSystem<f64> = md_core::init::initialize(&cfg);
    let sys32: ParticleSystem<f32> = sys64.convert();
    let p64 = cfg.substrate::<f64>();
    let p32 = cfg.substrate::<f32>();

    group.bench_function("f64", |b| {
        let mut s = sys64.clone();
        let mut k = AllPairsHalfKernel;
        b.iter(|| black_box(k.compute(&mut s, &p64)));
    });
    group.bench_function("f32", |b| {
        let mut s = sys32.clone();
        let mut k = AllPairsHalfKernel;
        b.iter(|| black_box(k.compute(&mut s, &p32)));
    });
    group.finish();
}

fn integration_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("verlet_step");
    let cfg = SimConfig::reduced_lj(864);
    group.bench_function("step-864", |b| {
        let mut sim = Simulation::<f64>::prepare(cfg);
        b.iter(|| black_box(sim.step()));
    });
    group.finish();
}

criterion_group!(name = kernels; config = host_criterion(); targets = force_kernels, precision, integration_step);
criterion_main!(kernels);
