//! Figure 5 as a Criterion bench: simulated runtime of one SPE acceleration
//! evaluation per SIMD optimization stage. The reported "time" is simulated
//! 3.2 GHz SPE time, not host time.

use cell_be::{CellBeDevice, SpeKernelVariant};
use criterion::{criterion_group, criterion_main, Criterion};
use md_core::params::SimConfig;
use mdea_bench::{sim_criterion, sim_duration};

fn fig5(c: &mut Criterion) {
    // 1024 atoms keeps each Criterion sample fast while preserving the
    // ladder's ratios exactly (per-pair costs are size independent).
    let sim = SimConfig::reduced_lj(1024);
    let device = CellBeDevice::paper_blade();

    let mut group = c.benchmark_group("fig5_simd_ladder");
    for variant in SpeKernelVariant::ALL {
        group.bench_function(variant.label(), |b| {
            b.iter_custom(|iters| {
                let s = device
                    .time_single_spe_accel(&sim, variant)
                    .expect("fits local store");
                sim_duration(s, iters)
            });
        });
    }
    group.finish();
}

criterion_group!(name = benches; config = sim_criterion(); targets = fig5);
criterion_main!(benches);
