//! Figure 9 as a Criterion bench: MTA vs Opteron simulated runtime across the
//! workload sweep (the relative-to-256 normalization the paper plots is
//! applied by the sweep binary; the bench reports the raw series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use md_core::device::{MdDevice, RunOptions};
use md_core::params::SimConfig;
use mdea_bench::{sim_criterion, sim_duration};
use mta::{MtaMd, ThreadingMode};
use opteron::OpteronCpu;

fn fig9(c: &mut Criterion) {
    let steps = 2;
    let mut group = c.benchmark_group("fig9_scaling");
    for &n in &[256usize, 512, 1024, 2048, 4096] {
        let sim = SimConfig::reduced_lj(n);
        group.bench_with_input(BenchmarkId::new("mta", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let run = MtaMd::paper_mta2(ThreadingMode::FullyMultithreaded)
                    .run(&sim, RunOptions::steps(steps))
                    .expect("MTA model runs any workload");
                sim_duration(run.sim_seconds, iters)
            });
        });
        group.bench_with_input(BenchmarkId::new("opteron", n), &n, |b, _| {
            b.iter_custom(|iters| {
                let run = OpteronCpu::paper_reference()
                    .run(&sim, RunOptions::steps(steps))
                    .expect("reference CPU runs");
                sim_duration(run.sim_seconds, iters)
            });
        });
    }
    group.finish();
}

criterion_group!(name = benches; config = sim_criterion(); targets = fig9);
criterion_main!(benches);
