//! Span collection and Chrome trace-event export.

use sim_obs::ChromeTrace;

/// A logical timeline row (a device engine: "PPE", "SPE 0", "DMA", ...).
/// Rendered as a thread inside the trace's single process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceTrack(pub u32);

/// One completed span of simulated time on a track.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    pub track: TraceTrack,
    pub name: String,
    pub category: &'static str,
    /// Start, simulated seconds.
    pub start_s: f64,
    /// Duration, simulated seconds.
    pub duration_s: f64,
}

/// A point-in-time marker on a track (rendered as a Chrome "i" instant
/// event). Used for things that have no duration — dropped deadlines,
/// detected hazards, protocol milestones.
#[derive(Clone, Debug, PartialEq)]
pub struct Instant {
    pub track: TraceTrack,
    pub name: String,
    pub category: &'static str,
    /// Simulated seconds.
    pub time_s: f64,
}

/// A sampled counter value on a track (rendered as a Chrome "C" counter
/// event). Perfetto draws these as counter lanes aligned with the span
/// timeline — DMA bytes, cache misses, phantom cycles over simulated time.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterSample {
    pub track: TraceTrack,
    pub name: String,
    pub category: &'static str,
    /// Simulated seconds.
    pub time_s: f64,
    /// Counter value at `time_s`.
    pub value: f64,
}

/// Collects spans and track names; exports Chrome trace JSON.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    spans: Vec<Span>,
    instants: Vec<Instant>,
    counters: Vec<CounterSample>,
    track_names: Vec<(TraceTrack, String)>,
}

impl Tracer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a human-readable name for a track (first registration wins).
    pub fn name_track(&mut self, track: TraceTrack, name: impl Into<String>) {
        if !self.track_names.iter().any(|(t, _)| *t == track) {
            self.track_names.push((track, name.into()));
        }
    }

    /// Record a completed span. Zero-duration spans are kept (they render as
    /// instant markers); negative durations are a caller bug.
    pub fn span(
        &mut self,
        track: TraceTrack,
        name: impl Into<String>,
        category: &'static str,
        start_s: f64,
        duration_s: f64,
    ) {
        assert!(duration_s >= 0.0, "span duration must be non-negative");
        assert!(start_s >= 0.0, "span start must be non-negative");
        self.spans.push(Span {
            track,
            name: name.into(),
            category,
            start_s,
            duration_s,
        });
    }

    /// Record an instant marker.
    pub fn instant(
        &mut self,
        track: TraceTrack,
        name: impl Into<String>,
        category: &'static str,
        time_s: f64,
    ) {
        assert!(time_s >= 0.0, "instant time must be non-negative");
        self.instants.push(Instant {
            track,
            name: name.into(),
            category,
            time_s,
        });
    }

    /// Record one counter sample.
    pub fn counter(
        &mut self,
        track: TraceTrack,
        name: impl Into<String>,
        category: &'static str,
        time_s: f64,
        value: f64,
    ) {
        assert!(time_s >= 0.0, "counter time must be non-negative");
        assert!(value.is_finite(), "counter value must be finite");
        self.counters.push(CounterSample {
            track,
            name: name.into(),
            category,
            time_s,
            value,
        });
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn instants(&self) -> &[Instant] {
        &self.instants
    }

    pub fn counter_samples(&self) -> &[CounterSample] {
        &self.counters
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.instants.is_empty() && self.counters.is_empty()
    }

    /// End time of the latest span, instant, or counter sample (simulated
    /// seconds).
    pub fn end_time(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| s.start_s + s.duration_s)
            .chain(self.instants.iter().map(|i| i.time_s))
            .chain(self.counters.iter().map(|c| c.time_s))
            .fold(0.0, f64::max)
    }

    /// Total busy time on one track.
    pub fn track_busy(&self, track: TraceTrack) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.track == track)
            .map(|s| s.duration_s)
            .sum()
    }

    /// Render as a Chrome trace-event JSON array (complete "X" events, "i"
    /// instants, and "C" counter samples; one thread per track, microsecond
    /// timestamps).
    ///
    /// Events are emitted sorted by `(timestamp, track, kind)` — spans before
    /// instants before counters at equal `(timestamp, track)`, insertion
    /// order last — so the output depends only on *what* was recorded, never
    /// on the order the device model happened to record it in. That keeps
    /// trace golden files stable across refactors of the recording code.
    ///
    /// The byte format itself lives in [`sim_obs::ChromeTrace`], shared with
    /// `sim-perf`'s counter export and pinned by the golden files under
    /// `tests/golden/`.
    pub fn to_chrome_json(&self) -> String {
        let mut trace = ChromeTrace::new();
        for (track, name) in &self.track_names {
            trace.thread_name(track.0, name);
        }
        for s in &self.spans {
            trace.span(s.track.0, &s.name, s.category, s.start_s, s.duration_s);
        }
        for i in &self.instants {
            trace.instant(i.track.0, &i.name, i.category, i.time_s);
        }
        for c in &self.counters {
            trace.counter(c.track.0, &c.name, c.category, c.time_s, c.value);
        }
        trace.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_summarizes() {
        let mut t = Tracer::new();
        t.name_track(TraceTrack(0), "PPE");
        t.name_track(TraceTrack(1), "SPE 0");
        t.span(TraceTrack(0), "spawn", "thread", 0.0, 1e-3);
        t.span(TraceTrack(1), "dma-get", "dma", 1e-3, 2e-4);
        t.span(TraceTrack(1), "kernel", "compute", 1.2e-3, 5e-3);
        assert_eq!(t.spans().len(), 3);
        assert!((t.end_time() - 6.2e-3).abs() < 1e-12);
        assert!((t.track_busy(TraceTrack(1)) - 5.2e-3).abs() < 1e-12);
        assert_eq!(t.track_busy(TraceTrack(9)), 0.0);
    }

    #[test]
    fn chrome_json_structure() {
        let mut t = Tracer::new();
        t.name_track(TraceTrack(3), "SPE \"3\"");
        t.span(TraceTrack(3), "kernel", "compute", 0.001, 0.002);
        let json = t.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1000.000"), "{json}");
        assert!(json.contains("\"dur\":2000.000"));
        assert!(json.contains(r#"SPE \"3\""#), "track name escaped");
        // Balanced braces — a cheap well-formedness proxy.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn duplicate_track_name_ignored() {
        let mut t = Tracer::new();
        t.name_track(TraceTrack(0), "first");
        t.name_track(TraceTrack(0), "second");
        let json = t.to_chrome_json();
        assert!(json.contains("first"));
        assert!(!json.contains("second"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        Tracer::new().span(TraceTrack(0), "x", "c", 0.0, -1.0);
    }

    #[test]
    fn instants_render_as_i_events() {
        let mut t = Tracer::new();
        assert!(t.is_empty());
        t.instant(TraceTrack(2), "hazard: missing tag wait", "hazard", 0.004);
        assert!(!t.is_empty());
        assert_eq!(t.instants().len(), 1);
        assert!((t.end_time() - 0.004).abs() < 1e-12);
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"s\":\"t\""), "thread-scoped instant");
        assert!(json.contains("\"ts\":4000.000"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_tracer_renders_empty_array() {
        let json = Tracer::new().to_chrome_json();
        assert_eq!(json.trim(), "[\n\n]".trim_start());
    }

    #[test]
    fn counters_render_as_c_events() {
        let mut t = Tracer::new();
        assert!(t.is_empty());
        t.counter(TraceTrack(5), "dma.bytes", "perf", 0.002, 4096.0);
        assert!(!t.is_empty());
        assert_eq!(t.counter_samples().len(), 1);
        assert!((t.end_time() - 0.002).abs() < 1e-12);
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"ts\":2000.000"), "{json}");
        assert!(json.contains("\"args\":{\"value\":4096}"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_counter_value_rejected() {
        Tracer::new().counter(TraceTrack(0), "x", "perf", 0.0, f64::NAN);
    }

    #[test]
    fn export_is_insertion_order_independent() {
        let record = |order: &[usize]| {
            let mut t = Tracer::new();
            t.name_track(TraceTrack(0), "PPE");
            let items: [&dyn Fn(&mut Tracer); 3] = [
                &|t: &mut Tracer| t.span(TraceTrack(0), "late", "c", 0.002, 0.001),
                &|t: &mut Tracer| t.span(TraceTrack(0), "early", "c", 0.000, 0.001),
                &|t: &mut Tracer| t.instant(TraceTrack(0), "mid", "c", 0.001),
            ];
            for &i in order {
                items[i](&mut t);
            }
            t.to_chrome_json()
        };
        let a = record(&[0, 1, 2]);
        let b = record(&[2, 1, 0]);
        assert_eq!(a, b, "sorted export must not depend on insertion order");
        let early = a.find("early").expect("early present");
        let mid = a.find("mid").expect("mid present");
        let late = a.find("late").expect("late present");
        assert!(early < mid && mid < late, "events sorted by timestamp");
    }

    #[test]
    fn equal_timestamps_sort_span_instant_counter() {
        let mut t = Tracer::new();
        t.counter(TraceTrack(1), "ctr", "perf", 0.001, 1.0);
        t.instant(TraceTrack(1), "inst", "c", 0.001);
        t.span(TraceTrack(1), "spn", "c", 0.001, 0.0);
        t.span(TraceTrack(0), "other-track", "c", 0.001, 0.0);
        let json = t.to_chrome_json();
        let pos = |needle: &str| json.find(needle).expect("present");
        assert!(pos("other-track") < pos("spn"), "lower track first");
        assert!(
            pos("spn") < pos("inst") && pos("inst") < pos("ctr"),
            "{json}"
        );
    }
}
