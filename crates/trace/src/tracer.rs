//! Span collection and Chrome trace-event export.

use crate::json::escape_json_string;
use std::fmt::Write as _;

/// A logical timeline row (a device engine: "PPE", "SPE 0", "DMA", ...).
/// Rendered as a thread inside the trace's single process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceTrack(pub u32);

/// One completed span of simulated time on a track.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    pub track: TraceTrack,
    pub name: String,
    pub category: &'static str,
    /// Start, simulated seconds.
    pub start_s: f64,
    /// Duration, simulated seconds.
    pub duration_s: f64,
}

/// A point-in-time marker on a track (rendered as a Chrome "i" instant
/// event). Used for things that have no duration — dropped deadlines,
/// detected hazards, protocol milestones.
#[derive(Clone, Debug, PartialEq)]
pub struct Instant {
    pub track: TraceTrack,
    pub name: String,
    pub category: &'static str,
    /// Simulated seconds.
    pub time_s: f64,
}

/// Collects spans and track names; exports Chrome trace JSON.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    spans: Vec<Span>,
    instants: Vec<Instant>,
    track_names: Vec<(TraceTrack, String)>,
}

impl Tracer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a human-readable name for a track (first registration wins).
    pub fn name_track(&mut self, track: TraceTrack, name: impl Into<String>) {
        if !self.track_names.iter().any(|(t, _)| *t == track) {
            self.track_names.push((track, name.into()));
        }
    }

    /// Record a completed span. Zero-duration spans are kept (they render as
    /// instant markers); negative durations are a caller bug.
    pub fn span(
        &mut self,
        track: TraceTrack,
        name: impl Into<String>,
        category: &'static str,
        start_s: f64,
        duration_s: f64,
    ) {
        assert!(duration_s >= 0.0, "span duration must be non-negative");
        assert!(start_s >= 0.0, "span start must be non-negative");
        self.spans.push(Span {
            track,
            name: name.into(),
            category,
            start_s,
            duration_s,
        });
    }

    /// Record an instant marker.
    pub fn instant(
        &mut self,
        track: TraceTrack,
        name: impl Into<String>,
        category: &'static str,
        time_s: f64,
    ) {
        assert!(time_s >= 0.0, "instant time must be non-negative");
        self.instants.push(Instant {
            track,
            name: name.into(),
            category,
            time_s,
        });
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn instants(&self) -> &[Instant] {
        &self.instants
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.instants.is_empty()
    }

    /// End time of the latest span or instant (simulated seconds).
    pub fn end_time(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| s.start_s + s.duration_s)
            .chain(self.instants.iter().map(|i| i.time_s))
            .fold(0.0, f64::max)
    }

    /// Total busy time on one track.
    pub fn track_busy(&self, track: TraceTrack) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.track == track)
            .map(|s| s.duration_s)
            .sum()
    }

    /// Render as a Chrome trace-event JSON array (complete "X" events, one
    /// thread per track, microsecond timestamps).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        let mut push = |out: &mut String, body: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&body);
        };
        for (track, name) in &self.track_names {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    track.0,
                    escape_json_string(name)
                ),
            );
        }
        for s in &self.spans {
            let mut body = String::new();
            let _ = write!(
                body,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3}}}",
                escape_json_string(&s.name),
                escape_json_string(s.category),
                s.track.0,
                s.start_s * 1e6,
                s.duration_s * 1e6,
            );
            push(&mut out, body);
        }
        for i in &self.instants {
            let mut body = String::new();
            let _ = write!(
                body,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"s\":\"t\"}}",
                escape_json_string(&i.name),
                escape_json_string(i.category),
                i.track.0,
                i.time_s * 1e6,
            );
            push(&mut out, body);
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_summarizes() {
        let mut t = Tracer::new();
        t.name_track(TraceTrack(0), "PPE");
        t.name_track(TraceTrack(1), "SPE 0");
        t.span(TraceTrack(0), "spawn", "thread", 0.0, 1e-3);
        t.span(TraceTrack(1), "dma-get", "dma", 1e-3, 2e-4);
        t.span(TraceTrack(1), "kernel", "compute", 1.2e-3, 5e-3);
        assert_eq!(t.spans().len(), 3);
        assert!((t.end_time() - 6.2e-3).abs() < 1e-12);
        assert!((t.track_busy(TraceTrack(1)) - 5.2e-3).abs() < 1e-12);
        assert_eq!(t.track_busy(TraceTrack(9)), 0.0);
    }

    #[test]
    fn chrome_json_structure() {
        let mut t = Tracer::new();
        t.name_track(TraceTrack(3), "SPE \"3\"");
        t.span(TraceTrack(3), "kernel", "compute", 0.001, 0.002);
        let json = t.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1000.000"), "{json}");
        assert!(json.contains("\"dur\":2000.000"));
        assert!(json.contains(r#"SPE \"3\""#), "track name escaped");
        // Balanced braces — a cheap well-formedness proxy.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn duplicate_track_name_ignored() {
        let mut t = Tracer::new();
        t.name_track(TraceTrack(0), "first");
        t.name_track(TraceTrack(0), "second");
        let json = t.to_chrome_json();
        assert!(json.contains("first"));
        assert!(!json.contains("second"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        Tracer::new().span(TraceTrack(0), "x", "c", 0.0, -1.0);
    }

    #[test]
    fn instants_render_as_i_events() {
        let mut t = Tracer::new();
        assert!(t.is_empty());
        t.instant(TraceTrack(2), "hazard: missing tag wait", "hazard", 0.004);
        assert!(!t.is_empty());
        assert_eq!(t.instants().len(), 1);
        assert!((t.end_time() - 0.004).abs() < 1e-12);
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"s\":\"t\""), "thread-scoped instant");
        assert!(json.contains("\"ts\":4000.000"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_tracer_renders_empty_array() {
        let json = Tracer::new().to_chrome_json();
        assert_eq!(json.trim(), "[\n\n]".trim_start());
    }
}
