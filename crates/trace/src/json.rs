//! Minimal JSON string escaping (the only JSON machinery the trace format
//! needs beyond simple formatting).

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_json_string(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json_string("a\\b"), r"a\\b");
        assert_eq!(escape_json_string("line\nbreak"), r"line\nbreak");
        assert_eq!(escape_json_string("\u{1}"), "\\u0001");
        assert_eq!(escape_json_string("plain"), "plain");
    }

    proptest! {
        /// Escaped output never contains raw control characters or unescaped
        /// quotes/backslashes in positions that would break a JSON literal.
        #[test]
        fn output_is_literal_safe(s in ".*") {
            let e = escape_json_string(&s);
            let mut chars = e.chars().peekable();
            while let Some(c) = chars.next() {
                prop_assert!((c as u32) >= 0x20, "raw control char survived");
                if c == '\\' {
                    let next = chars.next();
                    prop_assert!(next.is_some(), "dangling escape");
                } else {
                    prop_assert!(c != '"', "unescaped quote");
                }
            }
        }
    }
}
