//! JSON string escaping, re-exported from the shared `sim-obs` layer so the
//! public `mdea_trace::escape_json_string` path keeps working. The
//! implementation (and its property tests) moved down into `sim_obs::json`
//! when the Chrome writer was deduplicated.

pub use sim_obs::json::escape_json_string;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_escapes_specials() {
        assert_eq!(escape_json_string(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_json_string("\u{1}"), "\\u0001");
    }
}
