//! Timeline tracing for the simulated devices.
//!
//! The device models account simulated time as they execute; this crate lets
//! them also emit *spans* — "SPE 3: DMA get, 4.2 µs–4.9 µs" — and renders the
//! collection as [Chrome trace-event JSON] that loads directly into
//! `chrome://tracing` or [Perfetto]. That turns a Cell run into an inspectable
//! timeline: thread launches on the PPE track, DMA/compute alternation on
//! each SPE track, mailbox handshakes between them.
//!
//! Times are *simulated device seconds*, recorded as microseconds in the
//! trace (the Chrome format's native unit).
//!
//! [Chrome trace-event JSON]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

mod json;
mod tracer;

pub use tracer::{CounterSample, Instant, Span, TraceTrack, Tracer};

pub use json::escape_json_string;
