//! The SPE DMA engine: moves data between main memory and a local store.
//!
//! Real SPE DMA requires 16-byte alignment (optimal at 128), transfers at
//! most 16 KB per command, and streams at the Element Interconnect Bus rate.
//! The engine here enforces the alignment and size rules, actually copies the
//! bytes, and reports the cycle cost of each transfer so the device model can
//! charge it. Malformed commands surface as [`DmaError`] values, not panics —
//! a failed transfer must stay inside the cost-accounted simulation.

use crate::config::CellConfig;
use crate::error::DmaError;
use crate::localstore::{LocalStore, LsRegion};

/// Stateless DMA cost/transfer engine (per-SPE in hardware; shared here since
/// transfers carry their own state).
#[derive(Clone, Copy, Debug)]
pub struct DmaEngine {
    latency_cycles: f64,
    bytes_per_cycle: f64,
    max_transfer: usize,
}

impl DmaEngine {
    pub fn new(config: &CellConfig) -> Self {
        Self {
            latency_cycles: config.dma_latency_cycles,
            bytes_per_cycle: config.dma_bytes_per_cycle,
            max_transfer: config.dma_max_transfer,
        }
    }

    /// Number of ≤16 KB hardware commands a `len`-byte transfer splits into.
    pub fn command_count(&self, len: usize) -> usize {
        len.div_ceil(self.max_transfer)
    }

    /// Cycle cost of moving `len` bytes: each ≤16 KB command pays the issue
    /// latency, then bytes stream at bus bandwidth.
    pub fn transfer_cycles(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        self.command_count(len) as f64 * self.latency_cycles + len as f64 / self.bytes_per_cycle
    }

    fn check_alignment(len: usize, ls_offset: usize) -> Result<(), DmaError> {
        if !len.is_multiple_of(16) {
            return Err(DmaError::UnalignedLength { len });
        }
        if !ls_offset.is_multiple_of(16) {
            return Err(DmaError::UnalignedOffset { offset: ls_offset });
        }
        Ok(())
    }

    fn check_bounds(
        region: LsRegion,
        main_offset: usize,
        len: usize,
        mem_len: usize,
    ) -> Result<(), DmaError> {
        Self::check_alignment(len, region.offset)?;
        if len > region.len {
            return Err(DmaError::RegionOverflow {
                len,
                region_len: region.len,
            });
        }
        if main_offset + len > mem_len {
            return Err(DmaError::MainMemoryOutOfBounds {
                offset: main_offset,
                len,
                mem_len,
            });
        }
        Ok(())
    }

    /// `mfc_get`: main memory → local store. Returns the cycle cost.
    pub fn get(
        &self,
        main_memory: &[u8],
        ls: &mut LocalStore,
        region: LsRegion,
        main_offset: usize,
        len: usize,
    ) -> Result<f64, DmaError> {
        Self::check_bounds(region, main_offset, len, main_memory.len())?;
        ls.write_bytes(region.offset, &main_memory[main_offset..main_offset + len])?;
        Ok(self.transfer_cycles(len))
    }

    /// `mfc_put`: local store → main memory. Returns the cycle cost.
    pub fn put(
        &self,
        ls: &LocalStore,
        main_memory: &mut [u8],
        region: LsRegion,
        main_offset: usize,
        len: usize,
    ) -> Result<f64, DmaError> {
        Self::check_bounds(region, main_offset, len, main_memory.len())?;
        main_memory[main_offset..main_offset + len]
            .copy_from_slice(ls.read_bytes(region.offset, len)?);
        Ok(self.transfer_cycles(len))
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(&CellConfig::paper_blade())
    }

    #[test]
    fn roundtrip_preserves_bytes() {
        let e = engine();
        let mut ls = LocalStore::new(1024);
        let r = ls.alloc(64).unwrap();
        let src: Vec<u8> = (0..64u8).collect();
        let mut main = vec![0u8; 128];
        main[32..96].copy_from_slice(&src);
        e.get(&main, &mut ls, r, 32, 64).unwrap();
        let mut out = vec![0u8; 128];
        e.put(&ls, &mut out, r, 16, 64).unwrap();
        assert_eq!(&out[16..80], &src[..]);
    }

    #[test]
    fn cost_scales_with_size_and_command_count() {
        let e = engine();
        let small = e.transfer_cycles(16);
        let large = e.transfer_cycles(16 * 1024);
        let split = e.transfer_cycles(32 * 1024); // two commands
        assert!(small > 0.0);
        assert!(large > small);
        // Two max-size commands cost two latencies + double the stream time.
        assert!((split - 2.0 * large).abs() < 1e-9);
        assert_eq!(e.transfer_cycles(0), 0.0);
    }

    #[test]
    fn transfers_over_16kb_split_into_commands() {
        let e = engine();
        assert_eq!(e.command_count(16), 1);
        assert_eq!(e.command_count(16 * 1024), 1, "exactly one max command");
        assert_eq!(e.command_count(16 * 1024 + 16), 2);
        assert_eq!(e.command_count(48 * 1024), 3);
        // The split shows up in the cost as one extra issue latency.
        let one = e.transfer_cycles(16 * 1024);
        let two = e.transfer_cycles(16 * 1024 + 16);
        let per_byte = 16.0 / (e.transfer_cycles(32) - e.transfer_cycles(16));
        assert!(
            two - one > 16.0 / per_byte,
            "second command pays a fresh latency: {one} -> {two}"
        );
        // A split transfer still moves every byte.
        let len = 40 * 1024; // 2.5 max-size commands
        let mut ls = LocalStore::new(64 * 1024);
        let r = ls.alloc(len).unwrap();
        let main: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        e.get(&main, &mut ls, r, 0, len).unwrap();
        let mut out = vec![0u8; len];
        e.put(&ls, &mut out, r, 0, len).unwrap();
        assert_eq!(out, main);
    }

    #[test]
    fn unaligned_length_rejected() {
        let e = engine();
        let mut ls = LocalStore::new(64);
        let r = ls.alloc(32).unwrap();
        let main = vec![0u8; 64];
        assert_eq!(
            e.get(&main, &mut ls, r, 0, 20),
            Err(DmaError::UnalignedLength { len: 20 })
        );
    }

    #[test]
    fn unaligned_offset_rejected() {
        let e = engine();
        let mut ls = LocalStore::new(64);
        ls.alloc(32).unwrap();
        let misaligned = LsRegion { offset: 8, len: 32 };
        let mut main = vec![0u8; 64];
        assert_eq!(
            e.get(&main, &mut ls, misaligned, 0, 16),
            Err(DmaError::UnalignedOffset { offset: 8 })
        );
        assert_eq!(
            e.put(&ls, &mut main, misaligned, 0, 16),
            Err(DmaError::UnalignedOffset { offset: 8 })
        );
    }

    #[test]
    fn source_overrun_rejected() {
        let e = engine();
        let mut ls = LocalStore::new(64);
        let r = ls.alloc(32).unwrap();
        let main = vec![0u8; 16];
        assert_eq!(
            e.get(&main, &mut ls, r, 0, 32),
            Err(DmaError::MainMemoryOutOfBounds {
                offset: 0,
                len: 32,
                mem_len: 16
            })
        );
    }

    #[test]
    fn transfer_larger_than_region_rejected() {
        let e = engine();
        let mut ls = LocalStore::new(64);
        let r = ls.alloc(16).unwrap();
        let main = vec![0u8; 64];
        assert_eq!(
            e.get(&main, &mut ls, r, 0, 32),
            Err(DmaError::RegionOverflow {
                len: 32,
                region_len: 16
            })
        );
    }

    #[test]
    fn failed_transfer_leaves_no_partial_write() {
        let e = engine();
        let mut ls = LocalStore::new(64);
        let r = ls.alloc(32).unwrap();
        let main = vec![7u8; 64];
        assert!(e.get(&main, &mut ls, r, 0, 20).is_err());
        assert!(
            ls.read_bytes(0, 32).unwrap().iter().all(|&b| b == 0),
            "rejected command must not touch the store"
        );
    }

    #[test]
    fn bandwidth_dominates_latency_for_large_transfers() {
        // A 2048-atom position array (32 KB) should stream in well under the
        // time the kernel spends on one force evaluation.
        let e = engine();
        let cycles = e.transfer_cycles(32 * 1024);
        assert!(cycles < 10_000.0, "32 KB DMA = {cycles} cycles");
    }
}
