//! The SPE DMA engine: moves data between main memory and a local store.
//!
//! Real SPE DMA requires 16-byte alignment (optimal at 128), transfers at
//! most 16 KB per command, and streams at the Element Interconnect Bus rate.
//! The engine here enforces the alignment and size rules, actually copies the
//! bytes, and reports the cycle cost of each transfer so the device model can
//! charge it.

use crate::config::CellConfig;
use crate::localstore::{LocalStore, LsRegion};

/// Stateless DMA cost/transfer engine (per-SPE in hardware; shared here since
/// transfers carry their own state).
#[derive(Clone, Copy, Debug)]
pub struct DmaEngine {
    latency_cycles: f64,
    bytes_per_cycle: f64,
    max_transfer: usize,
}

impl DmaEngine {
    pub fn new(config: &CellConfig) -> Self {
        Self {
            latency_cycles: config.dma_latency_cycles,
            bytes_per_cycle: config.dma_bytes_per_cycle,
            max_transfer: config.dma_max_transfer,
        }
    }

    /// Cycle cost of moving `len` bytes: each ≤16 KB command pays the issue
    /// latency, then bytes stream at bus bandwidth.
    pub fn transfer_cycles(&self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let commands = len.div_ceil(self.max_transfer) as f64;
        commands * self.latency_cycles + len as f64 / self.bytes_per_cycle
    }

    fn check_alignment(len: usize, ls_offset: usize) {
        assert!(
            len.is_multiple_of(16),
            "DMA length {len} must be a multiple of 16 bytes"
        );
        assert!(
            ls_offset.is_multiple_of(16),
            "DMA local-store offset {ls_offset} must be 16-byte aligned"
        );
    }

    /// `mfc_get`: main memory → local store. Returns the cycle cost.
    pub fn get(
        &self,
        main_memory: &[u8],
        ls: &mut LocalStore,
        region: LsRegion,
        main_offset: usize,
        len: usize,
    ) -> f64 {
        Self::check_alignment(len, region.offset);
        assert!(len <= region.len, "DMA get larger than destination region");
        assert!(
            main_offset + len <= main_memory.len(),
            "DMA get source out of bounds"
        );
        ls.write_bytes(region.offset, &main_memory[main_offset..main_offset + len]);
        self.transfer_cycles(len)
    }

    /// `mfc_put`: local store → main memory. Returns the cycle cost.
    pub fn put(
        &self,
        ls: &LocalStore,
        main_memory: &mut [u8],
        region: LsRegion,
        main_offset: usize,
        len: usize,
    ) -> f64 {
        Self::check_alignment(len, region.offset);
        assert!(len <= region.len, "DMA put larger than source region");
        assert!(
            main_offset + len <= main_memory.len(),
            "DMA put destination out of bounds"
        );
        main_memory[main_offset..main_offset + len]
            .copy_from_slice(ls.read_bytes(region.offset, len));
        self.transfer_cycles(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(&CellConfig::paper_blade())
    }

    #[test]
    fn roundtrip_preserves_bytes() {
        let e = engine();
        let mut ls = LocalStore::new(1024);
        let r = ls.alloc(64).unwrap();
        let src: Vec<u8> = (0..64u8).collect();
        let mut main = vec![0u8; 128];
        main[32..96].copy_from_slice(&src);
        e.get(&main, &mut ls, r, 32, 64);
        let mut out = vec![0u8; 128];
        e.put(&ls, &mut out, r, 16, 64);
        assert_eq!(&out[16..80], &src[..]);
    }

    #[test]
    fn cost_scales_with_size_and_command_count() {
        let e = engine();
        let small = e.transfer_cycles(16);
        let large = e.transfer_cycles(16 * 1024);
        let split = e.transfer_cycles(32 * 1024); // two commands
        assert!(small > 0.0);
        assert!(large > small);
        // Two max-size commands cost two latencies + double the stream time.
        assert!((split - 2.0 * large).abs() < 1e-9);
        assert_eq!(e.transfer_cycles(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn unaligned_length_rejected() {
        let e = engine();
        let mut ls = LocalStore::new(64);
        let r = ls.alloc(32).unwrap();
        let main = vec![0u8; 64];
        e.get(&main, &mut ls, r, 0, 20);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn source_overrun_rejected() {
        let e = engine();
        let mut ls = LocalStore::new(64);
        let r = ls.alloc(32).unwrap();
        let main = vec![0u8; 16];
        e.get(&main, &mut ls, r, 0, 32);
    }

    #[test]
    fn bandwidth_dominates_latency_for_large_transfers() {
        // A 2048-atom position array (32 KB) should stream in well under the
        // time the kernel spends on one force evaluation.
        let e = engine();
        let cycles = e.transfer_cycles(32 * 1024);
        assert!(cycles < 10_000.0, "32 KB DMA = {cycles} cycles");
    }
}
