//! The Power Processing Element: orchestration and (optionally) compute.
//!
//! In the paper's port the PPE runs everything except the acceleration
//! computation: velocity updates, position updates, energy reductions, and
//! the SPE thread/mailbox management. The paper also reports a PPE-only run
//! of the whole kernel — 26x slower than 8 SPEs — which we model by running
//! the scalar `Original` kernel variant with the PPE's effective CPI factor.

use crate::config::CellConfig;

/// Cycle-cost model for PPE-side work.
#[derive(Clone, Copy, Debug)]
pub struct PpeModel {
    /// Effective CPI multiplier over the SPE stage-cost table for scalar code
    /// on the in-order, dual-issue PPE.
    pub cpi_factor: f64,
    /// Per-atom cost of one integration pass (half-kick + drift + wrap or
    /// half-kick + energy accumulation), in cycles.
    pub integrate_per_atom: f64,
    /// Fixed per-step orchestration cost (loop control, step bookkeeping).
    pub step_overhead: f64,
}

impl PpeModel {
    pub fn new(config: &CellConfig) -> Self {
        Self {
            cpi_factor: config.ppe_cpi_factor,
            integrate_per_atom: 30.0,
            step_overhead: 2000.0,
        }
    }

    /// Cycles for one O(N) integration pass over `n` atoms.
    pub fn integration_cycles(&self, n: usize) -> f64 {
        self.step_overhead + self.integrate_per_atom * n as f64
    }

    /// Cycles for the PPE to execute SPE-kernel work itself (PPE-only mode):
    /// the scalar kernel's cycle count scaled by the PPE CPI factor.
    pub fn scale_kernel_cycles(&self, spe_cycles: f64) -> f64 {
        spe_cycles * self.cpi_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integration_linear_in_atoms() {
        let m = PpeModel::new(&CellConfig::paper_blade());
        let c1 = m.integration_cycles(1000);
        let c2 = m.integration_cycles(2000);
        assert!(c2 > c1);
        assert!((c2 - c1 - 1000.0 * m.integrate_per_atom).abs() < 1e-9);
    }

    #[test]
    fn ppe_slower_than_spe_on_kernel_work() {
        let m = PpeModel::new(&CellConfig::paper_blade());
        assert!(m.scale_kernel_cycles(100.0) > 100.0);
    }
}
