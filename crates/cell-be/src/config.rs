//! Cell BE timing parameters and the SPE per-stage cost calibration.

/// Per-pair cycle costs for each stage of the SPE acceleration kernel, in
/// scalar and SIMD form. These are the calibration constants behind the
/// Figure 5 optimization ladder.
///
/// Calibration rationale (documented so the numbers are auditable):
///
/// - the paper reports that replacing the unit-cell-search `if` with copysign
///   math gives "a small speedup" (branch bubbles on a branch-predictor-less,
///   deeply pipelined core, traded for a couple of extra fused ops);
/// - searching all three axes simultaneously with SIMD makes the kernel "over
///   1.5x faster than the original";
/// - SIMDizing the direction vector and the length calculation give 21% and
///   15% further improvements respectively;
/// - SIMDizing the force→acceleration conversion only improves the total by
///   a few percent because few tested pairs interact;
/// - a single SPE at full optimization "just edges out" the 2.2 GHz Opteron.
///
/// The stage costs below reproduce those ratios with the 3.2 GHz SPE clock.
#[derive(Clone, Copy, Debug)]
pub struct SpeCostModel {
    /// Unit-cell reflection (minimum image), scalar with data-dependent
    /// branches. Three axes; each axis pays ALU work plus an average branch
    /// bubble (no branch prediction on the SPE).
    pub reflect_branchy: f64,
    /// Reflection with the `if` replaced by copysign math (branch-free,
    /// slightly more arithmetic).
    pub reflect_copysign: f64,
    /// Reflection with all three axes searched simultaneously via SIMD.
    pub reflect_simd: f64,
    /// Direction vector, scalar (three lane-wise subtractions issued as
    /// scalar ops) vs one SIMD subtract.
    pub direction_scalar: f64,
    pub direction_simd: f64,
    /// Length (squared distance) computation, scalar vs SIMD dot product.
    pub length_scalar: f64,
    pub length_simd: f64,
    /// Cutoff comparison + conditional branch — kept in every variant (the
    /// interaction test itself is inherently data dependent).
    pub cutoff_test: f64,
    /// Local-store loads for the j-atom position (odd-pipe quadword loads).
    pub pair_loads: f64,
    /// Lennard-Jones force/energy evaluation for an interacting pair (shared
    /// by all variants; the paper never SIMDizes across pairs).
    pub lj_eval: f64,
    /// Force→acceleration conversion, scalar vs SIMD, per interacting pair.
    pub accel_scalar: f64,
    pub accel_simd: f64,
    /// Per-atom (outer-loop) overhead: i-position load, accumulator init,
    /// result store, loop bookkeeping.
    pub per_atom: f64,
    /// Arithmetic-cost multiplier for double precision — the paper's
    /// "outstanding issue". The first-generation SPE's DP unit is
    /// half-width (2 lanes) and not fully pipelined (a 13-cycle operation
    /// that stalls the pipeline for 7), giving roughly a 7x penalty on FP
    /// stages. Loads/stores are unaffected.
    pub dp_penalty: f64,
}

impl SpeCostModel {
    pub fn calibrated() -> Self {
        Self {
            reflect_branchy: 35.0,
            reflect_copysign: 31.5,
            reflect_simd: 7.0,
            direction_scalar: 9.0,
            direction_simd: 3.0,
            length_scalar: 12.0,
            length_simd: 8.3,
            cutoff_test: 3.0,
            pair_loads: 3.0,
            lj_eval: 17.0,
            accel_scalar: 9.0,
            accel_simd: 3.0,
            per_atom: 12.0,
            dp_penalty: 7.0,
        }
    }
}

/// Machine-level parameters of the simulated Cell blade.
#[derive(Clone, Copy, Debug)]
pub struct CellConfig {
    /// SPE (and PPE) clock in Hz. 3.2 GHz on the paper's blades.
    pub clock_hz: f64,
    /// Number of SPEs available (8 on the Cell BE).
    pub n_spes: usize,
    /// Local store capacity per SPE in bytes (256 KB).
    pub local_store_bytes: usize,
    /// DMA startup latency in cycles (command issue + EIB arbitration).
    pub dma_latency_cycles: f64,
    /// DMA streaming bandwidth in bytes per cycle (25.6 GB/s at 3.2 GHz = 8).
    pub dma_bytes_per_cycle: f64,
    /// Largest single DMA transfer in bytes (16 KB architectural limit;
    /// larger moves are split into multiple commands).
    pub dma_max_transfer: usize,
    /// Cycles for one blocking mailbox send/receive.
    pub mailbox_cycles: f64,
    /// Cycles for the PPE (Linux) to create, start, and later reap one SPE
    /// thread — the dominant overhead in Figure 6's respawn-every-step case.
    /// ~2.2 ms at 3.2 GHz (kernel-mediated SPE context creation).
    pub spawn_cycles: f64,
    /// PPE-side cost per step per SPE to service the blocking mailbox
    /// handshake in launch-once mode (OS-mediated wait + signal).
    pub ppe_service_cycles: f64,
    /// Effective cycles-per-op multiplier for scalar code on the in-order
    /// PPE relative to the SPE cost table (the paper's PPE-only run is ~26x
    /// slower than 8 SPEs).
    pub ppe_cpi_factor: f64,
    /// Stage cost table for the SPE kernel.
    pub costs: SpeCostModel,
}

impl CellConfig {
    /// The paper's 3.2 GHz Cell blade.
    pub fn paper_blade() -> Self {
        Self {
            clock_hz: 3.2e9,
            n_spes: 8,
            local_store_bytes: 256 * 1024,
            dma_latency_cycles: 1000.0,
            dma_bytes_per_cycle: 8.0,
            dma_max_transfer: 16 * 1024,
            mailbox_cycles: 300.0,
            spawn_cycles: 7.0e6,       // ~2.2 ms
            ppe_service_cycles: 6.4e5, // ~0.2 ms
            ppe_cpi_factor: 2.3,
            costs: SpeCostModel::calibrated(),
        }
    }
}

impl Default for CellConfig {
    fn default() -> Self {
        Self::paper_blade()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_ladder_is_monotonic_in_the_cost_table() {
        let c = SpeCostModel::calibrated();
        let v0 = c.reflect_branchy + c.direction_scalar + c.length_scalar;
        let v1 = c.reflect_copysign + c.direction_scalar + c.length_scalar;
        let v2 = c.reflect_simd + c.direction_scalar + c.length_scalar;
        let v3 = c.reflect_simd + c.direction_simd + c.length_scalar;
        let v4 = c.reflect_simd + c.direction_simd + c.length_simd;
        assert!(v0 > v1 && v1 > v2 && v2 > v3 && v3 > v4);
    }

    #[test]
    fn paper_ratios_encoded() {
        let c = SpeCostModel::calibrated();
        let fixed = c.cutoff_test + c.pair_loads;
        let v0 = c.reflect_branchy + c.direction_scalar + c.length_scalar + fixed;
        let v2 = c.reflect_simd + c.direction_scalar + c.length_scalar + fixed;
        let v3 = c.reflect_simd + c.direction_simd + c.length_scalar + fixed;
        let v4 = c.reflect_simd + c.direction_simd + c.length_simd + fixed;
        // "over 1.5x faster than the original"
        assert!(v0 / v2 > 1.5, "v0/v2 = {}", v0 / v2);
        // "21% and 15% improvements"
        assert!((v2 / v3 - 1.21).abs() < 0.05, "v2/v3 = {}", v2 / v3);
        assert!((v3 / v4 - 1.15).abs() < 0.05, "v3/v4 = {}", v3 / v4);
    }

    #[test]
    fn blade_parameters() {
        let c = CellConfig::paper_blade();
        assert_eq!(c.n_spes, 8);
        assert_eq!(c.local_store_bytes, 262144);
        assert!(c.spawn_cycles > 1e6, "thread launch is an OS-scale cost");
    }
}
