//! Functional simulator of the STI Cell Broadband Engine running the paper's
//! MD kernel.
//!
//! The Cell (paper section 3.1) pairs one dual-threaded Power core (PPE) with
//! eight Synergistic Processing Elements (SPEs). Each SPE has:
//!
//! - a 256 KB fixed-latency **local store** — the only memory it can touch
//!   ([`LocalStore`]),
//! - a high-bandwidth **DMA engine** for moving data between main memory and
//!   the local store ([`DmaEngine`]),
//! - blocking 32-bit **mailboxes** for small messages to/from the PPE
//!   ([`Mailbox`]),
//! - a heavily SIMD-focused ISA with **no branch prediction** and a uniform
//!   128-bit register file.
//!
//! This crate reproduces the paper's port (section 5.1): the acceleration
//! computation is offloaded to SPE "threads"; positions are DMA'd into each
//! local store; each SPE computes accelerations for its slice of atoms by
//! scanning all N positions; results are DMA'd back; the PPE integrates.
//! Everything is computed for real in `f32` (the precision the paper uses on
//! the Cell) while a cycle cost model accumulates simulated time, so results
//! are numerically checkable against `md_core` and runtimes are deterministic.
//!
//! The six SIMD optimization stages of Figure 5 are selectable via
//! [`SpeKernelVariant`]; the two thread-launch policies of Figure 6 via
//! [`SpawnPolicy`].

mod config;
mod device;
mod dma;
mod error;
#[cfg(feature = "hazard-check")]
pub mod hazard;
mod kernel;
mod localstore;
mod mailbox;
mod ppe;
mod spe;

pub use config::{CellConfig, SpeCostModel};
pub use device::{
    CellAccelProbe, CellBeDevice, CellMd, CellPpeMd, CellRun, CellRunConfig, CostBreakdown,
    SpawnPolicy,
};
pub use dma::DmaEngine;
pub use error::{CellError, DmaError, LsError};
pub use kernel::{
    compute_accelerations, compute_accelerations_f64, compute_accelerations_tiled, KernelStats,
    SpeKernelVariant, SpeLanePhysics, SpeLanePhysicsF64,
};
pub use localstore::{LocalStore, LsRegion};
pub use mailbox::Mailbox;
pub use ppe::PpeModel;
pub use spe::LsOverflow;
pub use spe::Spe;

/// Re-export of the tracing crate used by [`CellBeDevice::run_md_traced`].
pub use mdea_trace as trace;
