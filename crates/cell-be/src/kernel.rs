//! The SPE acceleration kernel and its Figure-5 optimization ladder.
//!
//! Six variants, cumulative in the order the paper applies them:
//!
//! 1. **Original** — fully scalar; the unit-cell (minimum image) search uses
//!    data-dependent `if`s, which stall the branch-predictor-less SPE.
//! 2. **Copysign** — the `if` replaced with branch-free copysign math.
//! 3. **SimdUnitCell** — all three axes of the unit-cell search handled
//!    simultaneously with SIMD compare/select ("instead of looping over all
//!    three dimensions, all three axes could be searched simultaneously").
//! 4. **SimdDirection** — the direction vector computed with one SIMD
//!    subtract instead of a scalar loop.
//! 5. **SimdLength** — the squared length via SIMD dot product.
//! 6. **SimdAcceleration** — the force→acceleration conversion SIMDized
//!    (small total gain: few tested pairs actually interact).
//!
//! Every variant computes the *same physics* on the *same local-store data*
//! (they differ in instruction selection, hence in cycle cost); tests verify
//! all six agree with the `md_core` reference kernel.

use crate::config::SpeCostModel;
use crate::localstore::{LocalStore, LsRegion};
use md_core::scenario::Substrate;
use std::ops::Range;
use vecmath::{F32x4, Real};

/// The six optimization stages of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpeKernelVariant {
    Original,
    Copysign,
    SimdUnitCell,
    SimdDirection,
    SimdLength,
    SimdAcceleration,
}

impl SpeKernelVariant {
    pub const ALL: [Self; 6] = [
        Self::Original,
        Self::Copysign,
        Self::SimdUnitCell,
        Self::SimdDirection,
        Self::SimdLength,
        Self::SimdAcceleration,
    ];

    /// The bar labels of Figure 5.
    pub fn label(self) -> &'static str {
        match self {
            Self::Original => "original",
            Self::Copysign => "replace \"if\" with \"copysign\"",
            Self::SimdUnitCell => "SIMD unit cell reflection",
            Self::SimdDirection => "SIMD direction vector",
            Self::SimdLength => "SIMD length calculation",
            Self::SimdAcceleration => "SIMD acceleration",
        }
    }

    fn reflect_simd(self) -> bool {
        self >= Self::SimdUnitCell
    }
    fn direction_simd(self) -> bool {
        self >= Self::SimdDirection
    }
    fn length_simd(self) -> bool {
        self >= Self::SimdLength
    }
    fn accel_simd(self) -> bool {
        self >= Self::SimdAcceleration
    }
    fn branch_free_reflect(self) -> bool {
        self >= Self::Copysign
    }
}

/// Work counters from one kernel invocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    pub pairs_tested: u64,
    pub interactions: u64,
    /// SPE cycles charged by the cost model.
    pub cycles: f64, // sim-vet: allow(precision-discipline): simulated-time accounting, not kernel physics
}

impl KernelStats {
    /// Charge the slice's cycles in closed form from the work counts:
    /// per-atom row overhead, per-tested-pair cost, per-interaction cost.
    ///
    /// Both the interpretive kernels and the shared-eval replay charge
    /// through this one expression, so the memo's cycle replay is *bitwise*
    /// the interpretive charge — an f64 identity, not an approximation. (An
    /// incremental `cycles += …` per pair cannot be replayed exactly: with
    /// non-integral stage costs the running sum's rounding depends on the
    /// interleaving of row/pair/interaction charges.)
    // sim-vet: begin-allow(precision-discipline): simulated-cycle accounting, not kernel physics
    fn charge_closed_form(
        &mut self,
        costs: &SpeCostModel,
        rows: u64,
        per_pair_cost: f64,
        per_interact_cost: f64,
    ) {
        self.cycles = costs.per_atom * rows as f64
            + per_pair_cost * self.pairs_tested as f64
            + per_interact_cost * self.interactions as f64;
    }
    // sim-vet: end-allow(precision-discipline)
}

/// Per-lane physics as the SPE sees it (single precision, matching the
/// paper's Cell port): the resolved scenario substrate — potential,
/// precision policy, thermostat — plus the geometry constants every pair
/// evaluation needs. Replaces the old hard-coded `SpeLjParams` so the same
/// SPE kernel serves every scenario (DESIGN.md §16).
#[derive(Clone, Copy, Debug)]
pub struct SpeLanePhysics {
    pub sub: Substrate<f32>,
    pub box_len: f32,
    pub inv_mass: f32,
}

/// Compute accelerations for atoms `i_range`, scanning all `n_atoms`
/// positions stored in the local store (quadword layout `[x, y, z, 0]`).
/// Writes `[ax, ay, az, pe_i]` quads into `acc` (the per-atom PE rides in
/// the fourth lane, as on the GPU port) and returns the summed PE
/// contribution of the slice (each pair counted once per owning atom) plus
/// the work counters.
#[allow(clippy::too_many_arguments)]
pub fn compute_accelerations(
    ls: &mut LocalStore,
    pos: LsRegion,
    acc: LsRegion,
    i_range: Range<usize>,
    n_atoms: usize,
    params: SpeLanePhysics,
    variant: SpeKernelVariant,
    costs: &SpeCostModel,
) -> (f32, KernelStats) {
    let mut stats = KernelStats::default();
    let mut pe_slice = 0.0f32;

    let l = params.box_len;
    let half_l = 0.5 * l;
    let cutoff2 = params.sub.cutoff2();
    let mixed = params.sub.accumulate_f64;
    // Potential-evaluation cycles per interacting pair: the LJ baseline plus
    // whatever extra arithmetic the scenario's potential costs (zero for LJ,
    // so the default scenario's charges are bit-identical to the seed).
    let pot_cost = costs.lj_eval + params.sub.extra_eval_ops();

    let reflect_cost = if variant.reflect_simd() {
        costs.reflect_simd
    } else if variant.branch_free_reflect() {
        costs.reflect_copysign
    } else {
        costs.reflect_branchy
    };
    let direction_cost = if variant.direction_simd() {
        costs.direction_simd
    } else {
        costs.direction_scalar
    };
    let length_cost = if variant.length_simd() {
        costs.length_simd
    } else {
        costs.length_scalar
    };
    let accel_cost = if variant.accel_simd() {
        costs.accel_simd
    } else {
        costs.accel_scalar
    };
    let per_pair_cost =
        reflect_cost + direction_cost + length_cost + costs.cutoff_test + costs.pair_loads;
    let rows = i_range.len() as u64;

    for i in i_range {
        let pi = ls.load_quad(pos, i);
        let pi_v = F32x4(pi);
        let mut acc_v = F32x4::ZERO;
        let mut pe_i = 0.0f32;
        // Mixed-precision accumulators (policy `mixed`): row sums carried in
        // f64 on the SPE's DP unit, narrowed once at the store.
        // sim-vet: begin-allow(precision-discipline): the mixed policy's DP accumulators are the point — the SPE's double-precision unit carries the row sums
        let mut acc64 = [0.0f64; 3];
        let mut pe64 = 0.0f64;
        // sim-vet: end-allow(precision-discipline)

        for j in 0..n_atoms {
            if j == i {
                continue;
            }
            stats.pairs_tested += 1;
            let pj = ls.load_quad(pos, j);

            // --- unit-cell reflection: correct pj to i's nearest image ---
            let pj_img: F32x4 = if variant.reflect_simd() {
                // All three axes at once: d = pi - pj, then shift pj by ±L
                // where |d| exceeds L/2, via compare + select (`selb`).
                let d = pi_v.sub(F32x4(pj));
                let hi = d.cmp_gt(F32x4::splat(half_l));
                let lo = F32x4::splat(-half_l).cmp_gt(d);
                let shift = F32x4::select(hi, F32x4::splat(l), F32x4::ZERO).add(F32x4::select(
                    lo,
                    F32x4::splat(-l),
                    F32x4::ZERO,
                ));
                F32x4(pj).add(shift)
            } else if variant.branch_free_reflect() {
                // Scalar copysign form per axis: n = trunc(|d|/L + ½)·sign(d).
                let mut q = pj;
                for k in 0..3 {
                    let d = pi[k] - q[k];
                    let n = (d.abs() / l + 0.5).floor().copysign(d);
                    q[k] += l * n;
                }
                F32x4(q)
            } else {
                // Scalar branchy form per axis.
                let mut q = pj;
                for k in 0..3 {
                    let d = pi[k] - q[k];
                    if d > half_l {
                        q[k] += l;
                    } else if d < -half_l {
                        q[k] -= l;
                    }
                }
                F32x4(q)
            };

            // --- direction vector ---
            let dir: F32x4 = if variant.direction_simd() {
                pi_v.sub(pj_img)
            } else {
                let mut d = [0.0f32; 4];
                for k in 0..3 {
                    d[k] = pi[k] - pj_img.lane(k);
                }
                F32x4(d)
            };

            // --- length calculation ---
            let r2: f32 = if variant.length_simd() {
                dir.dot3(dir)
            } else {
                let mut s = 0.0f32;
                for k in 0..3 {
                    s += dir.lane(k) * dir.lane(k);
                }
                s
            };

            // --- cutoff test (data-dependent in every variant) ---
            if r2 < cutoff2 && r2 > 0.0 {
                stats.interactions += 1;

                let (e, f_over_r) = params.sub.energy_force(r2);

                // --- force → acceleration conversion ---
                if mixed {
                    // sim-vet: begin-allow(precision-discipline): mixed policy widens per-pair contributions to the DP accumulators
                    pe64 += f64::from(e);
                    let s = f_over_r * params.inv_mass;
                    acc64[0] += f64::from(dir.lane(0) * s);
                    acc64[1] += f64::from(dir.lane(1) * s);
                    acc64[2] += f64::from(dir.lane(2) * s);
                    // sim-vet: end-allow(precision-discipline)
                } else if variant.accel_simd() {
                    pe_i += e;
                    acc_v = dir.madd(F32x4::splat(f_over_r * params.inv_mass), acc_v);
                } else {
                    pe_i += e;
                    let mut a = acc_v.0;
                    for (k, ak) in a.iter_mut().take(3).enumerate() {
                        *ak += dir.lane(k) * f_over_r * params.inv_mass;
                    }
                    acc_v = F32x4(a);
                }
            }
        }

        if mixed {
            acc_v = F32x4([
                f32::from_f64(acc64[0]),
                f32::from_f64(acc64[1]),
                f32::from_f64(acc64[2]),
                0.0,
            ]);
            pe_i = f32::from_f64(pe64);
        }
        pe_slice += pe_i;
        ls.store_quad(acc, i, [acc_v.lane(0), acc_v.lane(1), acc_v.lane(2), pe_i]);
    }
    stats.charge_closed_form(costs, rows, per_pair_cost, pot_cost + accel_cost);

    (pe_slice, stats)
}

/// Shared-eval replay of the fully SIMDized kernel
/// ([`SpeKernelVariant::SimdAcceleration`]): physics through
/// [`md_core::shared_eval::cell_row`] (the same per-pair IEEE operations,
/// batched 8-wide on the host), cycles charged in closed form from the same
/// work counts the interpretive loop would have accumulated. Bitwise
/// identical to `compute_accelerations` with the `SimdAcceleration` variant
/// in local-store contents, returned PE, and [`KernelStats`] — pinned by a
/// unit test below and end-to-end by `tests/shared_eval.rs`.
#[allow(clippy::too_many_arguments)]
pub fn compute_accelerations_shared(
    ls: &mut LocalStore,
    pos: LsRegion,
    acc: LsRegion,
    i_range: Range<usize>,
    n_atoms: usize,
    params: SpeLanePhysics,
    costs: &SpeCostModel,
) -> (f32, KernelStats) {
    let mut stats = KernelStats::default();
    let mut pe_slice = 0.0f32;

    let pot_cost = costs.lj_eval + params.sub.extra_eval_ops();
    let per_pair_cost = costs.reflect_simd
        + costs.direction_simd
        + costs.length_simd
        + costs.cutoff_test
        + costs.pair_loads;
    let rows = i_range.len() as u64;

    let soa = md_core::shared_eval::SoaPositionsF32::from_quads(
        (0..n_atoms).map(|j| ls.load_quad(pos, j)),
    );
    for i in i_range {
        let row =
            md_core::shared_eval::cell_row(&soa, i, params.box_len, &params.sub, params.inv_mass);
        // The interpretive loop skips the self-pair with a branch; the
        // shared kernel predicates it off. Tested-pair count is the same.
        stats.pairs_tested += n_atoms as u64 - 1;
        stats.interactions += row.interactions;
        pe_slice += row.pe;
        ls.store_quad(acc, i, [row.acc[0], row.acc[1], row.acc[2], row.pe]);
    }
    stats.charge_closed_form(costs, rows, per_pair_cost, pot_cost + costs.accel_simd);

    (pe_slice, stats)
}

/// Tiled acceleration kernel: compute the interactions of the SPE's own
/// atom slice (`pos_i`, global indices starting at `i_offset`) against one
/// *tile* of j-atoms (`pos_j`, global indices starting at `j_offset`),
/// accumulating into `acc` (one quad per local i atom, `[ax, ay, az, pe_i]`).
///
/// This is the streaming formulation a production Cell port needs once the
/// full position array no longer fits the 256 KB local store: j-atoms arrive
/// in DMA-sized tiles (double-buffered by the device layer) and partial
/// accelerations accumulate across tiles. The caller zeroes `acc` before the
/// first tile.
#[allow(clippy::too_many_arguments)]
pub fn compute_accelerations_tiled(
    ls: &mut LocalStore,
    pos_i: LsRegion,
    i_offset: usize,
    i_count: usize,
    pos_j: LsRegion,
    j_offset: usize,
    j_count: usize,
    acc: LsRegion,
    params: SpeLanePhysics,
    variant: SpeKernelVariant,
    costs: &SpeCostModel,
) -> (f32, KernelStats) {
    assert!(
        variant == SpeKernelVariant::SimdAcceleration,
        "the tiled port is built on the fully optimized kernel"
    );
    let mut stats = KernelStats::default();
    let mut pe_added = 0.0f32;

    let l = params.box_len;
    let half_l = 0.5 * l;
    let cutoff2 = params.sub.cutoff2();
    let mixed = params.sub.accumulate_f64;
    let per_pair_cost = costs.reflect_simd
        + costs.direction_simd
        + costs.length_simd
        + costs.cutoff_test
        + costs.pair_loads;
    let per_interact_cost = costs.lj_eval + costs.accel_simd + params.sub.extra_eval_ops();

    for ii in 0..i_count {
        let pi = F32x4(ls.load_quad(pos_i, ii));
        let mut acc_q = F32x4(ls.load_quad(acc, ii));
        // Mixed policy: this tile's contributions sum in f64, then fold into
        // the running f32 quad once per tile (the quad is the cross-tile
        // carrier, so narrowing happens at tile granularity).
        // sim-vet: allow(precision-discipline): mixed-policy tile accumulator runs on the SPE DP unit by design
        let mut acc64 = [0.0f64; 4];

        for jj in 0..j_count {
            if i_offset + ii == j_offset + jj {
                continue; // self-pair
            }
            stats.pairs_tested += 1;
            let pj = F32x4(ls.load_quad(pos_j, jj));

            let d = pi.sub(pj);
            let hi = d.cmp_gt(F32x4::splat(half_l));
            let lo = F32x4::splat(-half_l).cmp_gt(d);
            let shift = F32x4::select(hi, F32x4::splat(l), F32x4::ZERO).add(F32x4::select(
                lo,
                F32x4::splat(-l),
                F32x4::ZERO,
            ));
            let dir = pi.sub(pj.add(shift));
            let r2 = dir.dot3(dir);

            if r2 < cutoff2 && r2 > 0.0 {
                stats.interactions += 1;
                let (e, f_over_r) = params.sub.energy_force(r2);
                pe_added += e;
                if mixed {
                    // sim-vet: begin-allow(precision-discipline): mixed policy widens per-pair contributions to the DP accumulators
                    let s = f_over_r * params.inv_mass;
                    acc64[0] += f64::from(dir.lane(0) * s);
                    acc64[1] += f64::from(dir.lane(1) * s);
                    acc64[2] += f64::from(dir.lane(2) * s);
                    acc64[3] += f64::from(e);
                    // sim-vet: end-allow(precision-discipline)
                } else {
                    acc_q = dir.madd(F32x4::splat(f_over_r * params.inv_mass), acc_q);
                    acc_q = acc_q.with_lane(3, acc_q.lane(3) + e);
                }
            }
        }
        if mixed {
            acc_q = F32x4([
                acc_q.lane(0) + f32::from_f64(acc64[0]),
                acc_q.lane(1) + f32::from_f64(acc64[1]),
                acc_q.lane(2) + f32::from_f64(acc64[2]),
                acc_q.lane(3) + f32::from_f64(acc64[3]),
            ]);
        }
        ls.store_quad(acc, ii, acc_q.0);
    }
    stats.charge_closed_form(costs, i_count as u64, per_pair_cost, per_interact_cost);

    (pe_added, stats)
}

// sim-vet: begin-allow(precision-discipline): explicit double-precision section — models the SPE's DP unit (the paper's "outstanding issue"), not the f32 datapath

/// Double-precision lane physics for the DP kernel extension.
#[derive(Clone, Copy, Debug)]
pub struct SpeLanePhysicsF64 {
    pub sub: Substrate<f64>,
    pub box_len: f64,
    pub inv_mass: f64,
}

/// Double-precision acceleration kernel — the capability the paper lists as
/// the Cell's "outstanding issue". Data layout: each atom occupies two
/// quadwords per array (`[x, y]` and `[z, pad]`, 2 × f64 per 128-bit
/// register); the per-atom PE rides in the pad of the acceleration pair.
///
/// Functionally equivalent to the fully SIMDized single-precision variant but
/// in f64; the cost model multiplies every arithmetic stage by
/// [`SpeCostModel::dp_penalty`] (half-width, non-pipelined DP unit) while
/// local-store traffic doubles (two quads per atom).
pub fn compute_accelerations_f64(
    ls: &mut LocalStore,
    pos: LsRegion,
    acc: LsRegion,
    i_range: Range<usize>,
    n_atoms: usize,
    params: SpeLanePhysicsF64,
    costs: &SpeCostModel,
) -> (f64, KernelStats) {
    let mut stats = KernelStats::default();
    let mut pe_slice = 0.0f64;

    let l = params.box_len;
    let half_l = 0.5 * l;
    let cutoff2 = params.sub.cutoff2();

    // DP stage costs: arithmetic scaled by the penalty, loads doubled.
    let per_pair_cost =
        (costs.reflect_simd + costs.direction_simd + costs.length_simd + costs.cutoff_test)
            * costs.dp_penalty
            + 2.0 * costs.pair_loads;
    let per_interact_cost =
        (costs.lj_eval + costs.accel_simd + params.sub.extra_eval_ops()) * costs.dp_penalty;

    for i in i_range {
        stats.cycles += costs.per_atom * 2.0;
        let [xi, yi] = ls.load_dquad(pos, 2 * i);
        let [zi, _] = ls.load_dquad(pos, 2 * i + 1);
        let pi = [xi, yi, zi];
        let mut acc_v = [0.0f64; 3];
        let mut pe_i = 0.0f64;

        for j in 0..n_atoms {
            if j == i {
                continue;
            }
            stats.pairs_tested += 1;
            stats.cycles += per_pair_cost;
            let [xj, yj] = ls.load_dquad(pos, 2 * j);
            let [zj, _] = ls.load_dquad(pos, 2 * j + 1);
            let pj = [xj, yj, zj];

            let mut d = [0.0f64; 3];
            for k in 0..3 {
                let mut dk = pi[k] - pj[k];
                if dk > half_l {
                    dk -= l;
                } else if dk < -half_l {
                    dk += l;
                }
                d[k] = dk;
            }
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            if r2 < cutoff2 && r2 > 0.0 {
                stats.interactions += 1;
                stats.cycles += per_interact_cost;
                let (e, f_over_r) = params.sub.energy_force(r2);
                pe_i += e;
                for k in 0..3 {
                    acc_v[k] += d[k] * f_over_r * params.inv_mass;
                }
            }
        }

        pe_slice += pe_i;
        ls.store_dquad(acc, 2 * i, [acc_v[0], acc_v[1]]);
        ls.store_dquad(acc, 2 * i + 1, [acc_v[2], pe_i]);
    }

    (pe_slice, stats)
}

// sim-vet: end-allow(precision-discipline)

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::localstore::LocalStore;
    use md_core::scenario::ScenarioSpec;

    /// Builds a small LS image from explicit positions.
    fn setup(
        positions: &[[f32; 3]],
        box_len: f32,
    ) -> (LocalStore, LsRegion, LsRegion, SpeLanePhysics) {
        let n = positions.len();
        let mut ls = LocalStore::new(64 * 1024);
        let pos = ls.alloc_quads(n).unwrap();
        let acc = ls.alloc_quads(n).unwrap();
        for (i, p) in positions.iter().enumerate() {
            ls.store_quad(pos, i, [p[0], p[1], p[2], 0.0]);
        }
        let params = SpeLanePhysics {
            sub: ScenarioSpec::default().substrate(2.5),
            box_len,
            inv_mass: 1.0,
        };
        (ls, pos, acc, params)
    }

    #[test]
    fn all_variants_agree_on_a_pair() {
        let costs = SpeCostModel::calibrated();
        let mut results = Vec::new();
        for v in SpeKernelVariant::ALL {
            let (mut ls, pos, acc, params) = setup(&[[1.0, 1.0, 1.0], [2.2, 1.0, 1.0]], 20.0);
            let (pe, stats) = compute_accelerations(&mut ls, pos, acc, 0..2, 2, params, v, &costs);
            let a0 = ls.load_quad(acc, 0);
            results.push((pe, a0, stats));
        }
        let (pe0, a0, _) = results[0];
        for (i, (pe, a, _)) in results.iter().enumerate() {
            assert!(
                (pe - pe0).abs() <= 1e-5 * pe0.abs().max(1.0),
                "variant {i} PE {pe} vs {pe0}"
            );
            for k in 0..3 {
                assert!(
                    (a[k] - a0[k]).abs() <= 1e-4 * a0[k].abs().max(1e-3),
                    "variant {i} acc[{k}] {} vs {}",
                    a[k],
                    a0[k]
                );
            }
        }
    }

    #[test]
    fn wraps_across_the_boundary() {
        // Atoms at x=0.5 and x=19.5 in a 20-box are 1.0 apart through the wall.
        let costs = SpeCostModel::calibrated();
        for v in SpeKernelVariant::ALL {
            let (mut ls, pos, acc, params) = setup(&[[0.5, 5.0, 5.0], [19.5, 5.0, 5.0]], 20.0);
            let (_, stats) = compute_accelerations(&mut ls, pos, acc, 0..2, 2, params, v, &costs);
            assert_eq!(stats.interactions, 2, "{v:?} must see the wrapped pair");
            let a0 = ls.load_quad(acc, 0);
            // At r=1 the LJ force is 24ε(2−1)=24, repulsive: atom 0 pushed +x
            // (away from the image at x=-0.5).
            assert!(
                a0[0] > 0.0,
                "{v:?}: repulsion through the boundary, got {a0:?}"
            );
            assert!((a0[0] - 24.0).abs() < 1e-3, "{v:?}: |a| = {}", a0[0]);
        }
    }

    #[test]
    fn pe_rides_in_the_fourth_lane() {
        let costs = SpeCostModel::calibrated();
        let (mut ls, pos, acc, params) = setup(&[[1.0, 1.0, 1.0], [2.2, 1.0, 1.0]], 20.0);
        let (pe, _) = compute_accelerations(
            &mut ls,
            pos,
            acc,
            0..2,
            2,
            params,
            SpeKernelVariant::SimdAcceleration,
            &costs,
        );
        let a0 = ls.load_quad(acc, 0);
        let a1 = ls.load_quad(acc, 1);
        assert!((a0[3] + a1[3] - pe).abs() < 1e-6);
    }

    #[test]
    fn ladder_cycle_costs_strictly_decrease() {
        let costs = SpeCostModel::calibrated();
        let positions: Vec<[f32; 3]> = (0..32)
            .map(|i| {
                let f = i as f32;
                [f * 0.37 % 6.0, f * 0.73 % 6.0, f * 1.13 % 6.0]
            })
            .collect();
        let mut prev = f64::INFINITY;
        for v in SpeKernelVariant::ALL {
            let (mut ls, pos, acc, mut params) = setup(&positions, 6.0);
            params.sub = ScenarioSpec::default().substrate(2.0);
            let (_, stats) = compute_accelerations(&mut ls, pos, acc, 0..32, 32, params, v, &costs);
            assert!(
                stats.cycles < prev,
                "{v:?}: {} not below previous {prev}",
                stats.cycles
            );
            prev = stats.cycles;
        }
    }

    #[test]
    fn slice_partitioning_covers_all_atoms_once() {
        // Computing 0..16 and 16..32 separately must equal computing 0..32.
        let costs = SpeCostModel::calibrated();
        let positions: Vec<[f32; 3]> = (0..32)
            .map(|i| {
                let f = i as f32;
                [(f * 0.917) % 6.0, (f * 1.371) % 6.0, (f * 0.533) % 6.0]
            })
            .collect();
        let v = SpeKernelVariant::SimdAcceleration;

        let (mut ls_a, pos_a, acc_a, mut pa) = setup(&positions, 6.0);
        pa.sub = ScenarioSpec::default().substrate(2.0);
        let (pe_full, _) = compute_accelerations(&mut ls_a, pos_a, acc_a, 0..32, 32, pa, v, &costs);

        let (mut ls_b, pos_b, acc_b, mut pb) = setup(&positions, 6.0);
        pb.sub = ScenarioSpec::default().substrate(2.0);
        let (pe1, _) = compute_accelerations(&mut ls_b, pos_b, acc_b, 0..16, 32, pb, v, &costs);
        let (pe2, _) = compute_accelerations(&mut ls_b, pos_b, acc_b, 16..32, 32, pb, v, &costs);

        assert!((pe_full - (pe1 + pe2)).abs() < 1e-4 * pe_full.abs().max(1.0));
        for i in 0..32 {
            let a = ls_a.load_quad(acc_a, i);
            let b = ls_b.load_quad(acc_b, i);
            for k in 0..4 {
                assert_eq!(a[k], b[k], "atom {i} lane {k}");
            }
        }
    }

    #[test]
    fn shared_eval_replay_is_bitwise_identical() {
        // The memo contract: physics through the shared batched kernel plus
        // closed-form cycle charging must equal the interpretive
        // `SimdAcceleration` loop exactly — LS contents, PE, and stats.
        let costs = SpeCostModel::calibrated();
        let positions: Vec<[f32; 3]> = (0..67)
            .map(|i| {
                let f = i as f32;
                [(f * 0.917) % 6.0, (f * 1.371) % 6.0, (f * 0.533) % 6.0]
            })
            .collect();
        let n = positions.len();
        for spec in [
            ScenarioSpec::default(),
            ScenarioSpec::morse_nvt(),
            ScenarioSpec::default()
                .with_precision(md_core::scenario::PrecisionPolicy::MixedF64Accumulate),
        ] {
            let (mut ls_a, pos_a, acc_a, mut pa) = setup(&positions, 6.0);
            pa.sub = spec.substrate(2.0);
            let (pe_a, st_a) = compute_accelerations(
                &mut ls_a,
                pos_a,
                acc_a,
                0..n,
                n,
                pa,
                SpeKernelVariant::SimdAcceleration,
                &costs,
            );
            let (mut ls_b, pos_b, acc_b, mut pb) = setup(&positions, 6.0);
            pb.sub = spec.substrate(2.0);
            let (pe_b, st_b) =
                compute_accelerations_shared(&mut ls_b, pos_b, acc_b, 0..n, n, pb, &costs);
            assert_eq!(pe_a.to_bits(), pe_b.to_bits());
            assert_eq!(st_a.pairs_tested, st_b.pairs_tested);
            assert_eq!(st_a.interactions, st_b.interactions);
            assert_eq!(st_a.cycles.to_bits(), st_b.cycles.to_bits());
            for i in 0..n {
                let a = ls_a.load_quad(acc_a, i);
                let b = ls_b.load_quad(acc_b, i);
                for k in 0..4 {
                    assert_eq!(a[k].to_bits(), b[k].to_bits(), "atom {i} lane {k}");
                }
            }
        }
    }

    #[test]
    fn empty_range_does_nothing() {
        let costs = SpeCostModel::calibrated();
        let (mut ls, pos, acc, params) = setup(&[[1.0, 1.0, 1.0], [3.0, 3.0, 3.0]], 20.0);
        let (pe, stats) = compute_accelerations(
            &mut ls,
            pos,
            acc,
            1..1,
            2,
            params,
            SpeKernelVariant::Original,
            &costs,
        );
        assert_eq!(pe, 0.0);
        assert_eq!(stats.pairs_tested, 0);
        assert_eq!(stats.cycles, 0.0);
    }
}
