//! Dynamic DMA/mailbox hazard checking (the `hazard-check` feature).
//!
//! The functional simulator executes DMA transfers synchronously, so a whole
//! class of real-hardware bugs — touching a buffer while a tagged transfer is
//! still in flight, two transfers racing on the same local-store bytes, a
//! mailbox protocol that would block both endpoints — cannot corrupt its
//! results. They would corrupt a real Cell port. This checker models the
//! *asynchronous* semantics alongside the synchronous execution: the device
//! (or a test) declares when commands are issued, when tags are waited on,
//! and when compute touches the store, and the checker flags every access
//! that would have raced.
//!
//! Hazards are recorded as typed [`Hazard`] values and can be re-emitted as
//! instant events on a [`mdea_trace::Tracer`] timeline, where they appear as
//! markers at the moment of detection.
//!
//! Everything here is compiled out unless the `hazard-check` feature is on.

use crate::localstore::LsRegion;
use std::fmt;

/// Direction of a DMA command, from the SPE's perspective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Main memory → local store (`mfc_get`).
    Get,
    /// Local store → main memory (`mfc_put`).
    Put,
}

/// A detected ordering violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hazard {
    /// Two in-flight transfers target overlapping local-store bytes.
    OverlappingDma {
        first_tag: u32,
        second_tag: u32,
        offset: usize,
    },
    /// Compute read a region with a `get` still in flight — the classic
    /// missing `mfc_read_tag_status_all` bug; the read may see stale bytes.
    ReadBeforeGetComplete { tag: u32, offset: usize },
    /// Compute wrote a region with a `put` still in flight — the outgoing
    /// transfer may stream the new bytes, the old ones, or a mix.
    WriteBeforePutComplete { tag: u32, offset: usize },
    /// A blocking mailbox operation that can never be unblocked by the other
    /// endpoint (full-FIFO write / empty-FIFO read in a sequential schedule).
    MailboxDeadlock { spe: usize, op: &'static str },
}

impl Hazard {
    /// Short category used for trace events and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Hazard::OverlappingDma { .. } => "overlapping-dma",
            Hazard::ReadBeforeGetComplete { .. } => "read-before-get",
            Hazard::WriteBeforePutComplete { .. } => "write-before-put",
            Hazard::MailboxDeadlock { .. } => "mailbox-deadlock",
        }
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hazard::OverlappingDma {
                first_tag,
                second_tag,
                offset,
            } => write!(
                f,
                "DMA tag {second_tag} overlaps in-flight tag {first_tag} at local-store offset {offset}"
            ),
            Hazard::ReadBeforeGetComplete { tag, offset } => write!(
                f,
                "compute read at offset {offset} with get tag {tag} still in flight (missing tag wait)"
            ),
            Hazard::WriteBeforePutComplete { tag, offset } => write!(
                f,
                "compute write at offset {offset} with put tag {tag} still in flight (missing tag wait)"
            ),
            Hazard::MailboxDeadlock { spe, op } => {
                write!(f, "SPE {spe} mailbox {op} would deadlock (no concurrent peer)")
            }
        }
    }
}

fn overlaps(a: LsRegion, b: LsRegion) -> bool {
    a.offset < b.offset + b.len && b.offset < a.offset + a.len
}

/// Tracks in-flight tagged DMA commands against one local store and records
/// every access that would race on real hardware.
#[derive(Clone, Debug, Default)]
pub struct HazardChecker {
    in_flight: Vec<(u32, Dir, LsRegion)>,
    hazards: Vec<Hazard>,
}

impl HazardChecker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a DMA command issued with `tag` over `region`. Overlap with
    /// any transfer still in flight is itself a hazard (the MFC gives no
    /// ordering between tags).
    pub fn dma_issue(&mut self, tag: u32, dir: Dir, region: LsRegion) {
        for &(t, _, r) in &self.in_flight {
            if overlaps(r, region) {
                self.hazards.push(Hazard::OverlappingDma {
                    first_tag: t,
                    second_tag: tag,
                    offset: region.offset.max(r.offset),
                });
            }
        }
        self.in_flight.push((tag, dir, region));
    }

    /// Declare a tag-group wait (`mfc_read_tag_status_all` on one tag):
    /// every command with this tag is now complete.
    pub fn tag_wait(&mut self, tag: u32) {
        self.in_flight.retain(|&(t, _, _)| t != tag);
    }

    /// Declare a barrier on all outstanding tags.
    pub fn wait_all(&mut self) {
        self.in_flight.clear();
    }

    /// Declare that compute reads `region` from the local store.
    pub fn compute_read(&mut self, region: LsRegion) {
        for &(tag, dir, r) in &self.in_flight {
            if dir == Dir::Get && overlaps(r, region) {
                self.hazards.push(Hazard::ReadBeforeGetComplete {
                    tag,
                    offset: region.offset.max(r.offset),
                });
            }
        }
    }

    /// Declare that compute writes `region` in the local store.
    pub fn compute_write(&mut self, region: LsRegion) {
        for &(tag, dir, r) in &self.in_flight {
            if dir == Dir::Put && overlaps(r, region) {
                self.hazards.push(Hazard::WriteBeforePutComplete {
                    tag,
                    offset: region.offset.max(r.offset),
                });
            }
        }
    }

    /// Declare a blocking mailbox write on `spe`; `fifo_full` is the FIFO
    /// state at the moment of the call. In a sequential schedule a full FIFO
    /// can never drain concurrently, so the write is a deadlock.
    pub fn note_mailbox_write(&mut self, spe: usize, fifo_full: bool) {
        if fifo_full {
            self.hazards.push(Hazard::MailboxDeadlock {
                spe,
                op: "write to full FIFO",
            });
        }
    }

    /// Declare a blocking mailbox read on `spe` with the FIFO `fifo_empty`.
    pub fn note_mailbox_read(&mut self, spe: usize, fifo_empty: bool) {
        if fifo_empty {
            self.hazards.push(Hazard::MailboxDeadlock {
                spe,
                op: "read from empty FIFO",
            });
        }
    }

    /// Transfers currently in flight (no tag wait seen yet).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    pub fn hazards(&self) -> &[Hazard] {
        &self.hazards
    }

    pub fn is_clean(&self) -> bool {
        self.hazards.is_empty()
    }

    /// Emit every recorded hazard as an instant event on `track` at simulated
    /// time `time_s`. Returns the number of events emitted.
    pub fn emit_to_tracer(
        &self,
        tracer: &mut mdea_trace::Tracer,
        track: mdea_trace::TraceTrack,
        time_s: f64,
    ) -> usize {
        for h in &self.hazards {
            tracer.instant(track, format!("hazard: {h}"), h.kind(), time_s);
        }
        self.hazards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(offset: usize, len: usize) -> LsRegion {
        LsRegion { offset, len }
    }

    #[test]
    fn disciplined_sequence_is_clean() {
        let mut hz = HazardChecker::new();
        hz.dma_issue(1, Dir::Get, region(0, 64));
        hz.tag_wait(1);
        hz.compute_read(region(0, 64));
        hz.compute_write(region(64, 64));
        hz.dma_issue(2, Dir::Put, region(64, 64));
        hz.tag_wait(2);
        assert!(hz.is_clean(), "{:?}", hz.hazards());
        assert_eq!(hz.in_flight(), 0);
    }

    #[test]
    fn missing_tag_wait_before_read_detected() {
        let mut hz = HazardChecker::new();
        hz.dma_issue(5, Dir::Get, region(0, 128));
        hz.compute_read(region(16, 32)); // inside the in-flight get
        assert_eq!(
            hz.hazards(),
            &[Hazard::ReadBeforeGetComplete { tag: 5, offset: 16 }]
        );
        assert_eq!(hz.in_flight(), 1);
    }

    #[test]
    fn write_under_inflight_put_detected() {
        let mut hz = HazardChecker::new();
        hz.dma_issue(3, Dir::Put, region(128, 64));
        hz.compute_write(region(160, 16));
        assert_eq!(
            hz.hazards(),
            &[Hazard::WriteBeforePutComplete {
                tag: 3,
                offset: 160
            }]
        );
        // A read of the same bytes is fine — put streams them out, it does
        // not change them.
        hz.tag_wait(3);
        hz.dma_issue(4, Dir::Put, region(128, 64));
        let before = hz.hazards().len();
        hz.compute_read(region(128, 64));
        assert_eq!(hz.hazards().len(), before);
    }

    #[test]
    fn overlapping_inflight_transfers_detected() {
        let mut hz = HazardChecker::new();
        hz.dma_issue(1, Dir::Get, region(0, 64));
        hz.dma_issue(2, Dir::Get, region(48, 64)); // overlaps [48, 64)
        assert_eq!(
            hz.hazards(),
            &[Hazard::OverlappingDma {
                first_tag: 1,
                second_tag: 2,
                offset: 48
            }]
        );
        // Disjoint double buffering is the intended pattern — no hazard.
        let mut ok = HazardChecker::new();
        ok.dma_issue(1, Dir::Get, region(0, 64));
        ok.dma_issue(2, Dir::Get, region(64, 64));
        assert!(ok.is_clean());
    }

    #[test]
    fn wait_all_clears_everything() {
        let mut hz = HazardChecker::new();
        hz.dma_issue(1, Dir::Get, region(0, 64));
        hz.dma_issue(2, Dir::Put, region(64, 64));
        hz.wait_all();
        hz.compute_read(region(0, 64));
        hz.compute_write(region(64, 64));
        assert!(hz.is_clean());
    }

    #[test]
    fn mailbox_deadlocks_detected() {
        let mut hz = HazardChecker::new();
        hz.note_mailbox_write(3, false);
        hz.note_mailbox_read(3, false);
        assert!(hz.is_clean());
        hz.note_mailbox_write(3, true);
        hz.note_mailbox_read(2, true);
        assert_eq!(hz.hazards().len(), 2);
        assert_eq!(hz.hazards()[0].kind(), "mailbox-deadlock");
    }

    #[test]
    fn hazards_emit_as_trace_instants() {
        let mut hz = HazardChecker::new();
        hz.dma_issue(7, Dir::Get, region(0, 32));
        hz.compute_read(region(0, 32));
        let mut tracer = mdea_trace::Tracer::new();
        let n = hz.emit_to_tracer(&mut tracer, mdea_trace::TraceTrack(1), 0.002);
        assert_eq!(n, 1);
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("read-before-get"), "{json}");
        assert!(json.contains("tag 7"), "{json}");
    }
}
