//! The full Cell BE device: PPE orchestration of SPE offload, with the
//! Asynchronous Thread Runtime model the paper uses (section 5.1).

use crate::config::CellConfig;
use crate::dma::DmaEngine;
use crate::error::CellError;
#[cfg(feature = "hazard-check")]
use crate::hazard::{Dir, HazardChecker};
use crate::kernel::{compute_accelerations, KernelStats, SpeKernelVariant, SpeLanePhysics};
use crate::localstore::{LocalStore, LsRegion};
use crate::ppe::PpeModel;
use crate::spe::Spe;
use md_core::init;
use md_core::observables::EnergyReport;
use md_core::params::SimConfig;
use md_core::system::ParticleSystem;
use md_core::verlet::VelocityVerlet;

/// How SPE threads are managed across time steps (Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpawnPolicy {
    /// Create fresh SPE threads for every force evaluation — the naive port.
    RespawnEveryStep,
    /// Create threads once, then signal "more data" via mailboxes each step,
    /// amortizing the launch cost across all time steps.
    LaunchOnce,
}

/// Configuration of one Cell run.
#[derive(Clone, Copy, Debug)]
pub struct CellRunConfig {
    /// SPEs used (1..=8).
    pub n_spes: usize,
    pub policy: SpawnPolicy,
    pub variant: SpeKernelVariant,
}

impl CellRunConfig {
    /// The paper's best configuration: 8 SPEs, launch-once, fully SIMDized.
    pub fn best() -> Self {
        Self {
            n_spes: 8,
            policy: SpawnPolicy::LaunchOnce,
            variant: SpeKernelVariant::SimdAcceleration,
        }
    }

    pub fn single_spe() -> Self {
        Self {
            n_spes: 1,
            ..Self::best()
        }
    }
}

/// Simulated-cycle breakdown of a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostBreakdown {
    /// PPE-side SPE thread creation (serialized).
    pub spawn: f64,
    /// DMA transfers, as seen on the critical path (max across SPEs/step).
    pub dma: f64,
    /// SPE kernel compute on the critical path.
    pub compute: f64,
    /// Mailbox traffic + PPE-side handshake service.
    pub mailbox: f64,
    /// PPE integration and orchestration.
    pub ppe: f64,
}

impl CostBreakdown {
    pub fn total(&self) -> f64 {
        self.spawn + self.dma + self.compute + self.mailbox + self.ppe
    }
}

/// Result of a simulated Cell run.
#[derive(Clone, Debug)]
pub struct CellRun {
    pub sim_seconds: f64,
    pub breakdown: CostBreakdown,
    pub energies: EnergyReport,
    pub kernel_stats: KernelStats,
    pub config: CellRunConfig,
    /// Injected-fault ledger for this run (zero when no plan is armed).
    #[cfg(feature = "fault-inject")]
    pub faults: sim_fault::FaultStats,
}

impl CellRun {
    /// Fraction of the total runtime spent launching SPE threads — the
    /// quantity Figure 6 plots.
    pub fn launch_fraction(&self) -> f64 {
        self.breakdown.spawn / self.breakdown.total()
    }
}

/// The simulated Cell blade.
pub struct CellBeDevice {
    pub config: CellConfig,
    /// Physics-once replay memo (DESIGN.md §17): when enabled (the default)
    /// and the run uses the fully SIMDized kernel variant, each SPE slice's
    /// physics is evaluated once through the shared batched kernel and the
    /// per-pair cost loop is replayed in closed form. Bitwise identical to
    /// the interpretive path in state, energies, sim-seconds, and counters;
    /// disabling it (`set_eval_memo(false)`) restores the interpretive loop
    /// for baseline timing.
    eval_memo: bool,
    /// Armed fault schedule; `None` runs fault-free (see DESIGN.md §9).
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<sim_fault::FaultPlan>,
}

impl CellBeDevice {
    pub fn new(config: CellConfig) -> Self {
        Self {
            config,
            eval_memo: true,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// Enable or disable the shared-eval replay memo.
    pub fn set_eval_memo(&mut self, enabled: bool) {
        self.eval_memo = enabled;
    }

    pub fn paper_blade() -> Self {
        Self::new(CellConfig::paper_blade())
    }

    /// Arm a deterministic fault schedule for subsequent runs (primary
    /// resident path only; the tiled/double/PPE-only paths stay
    /// fault-free).
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: sim_fault::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    fn lane_physics(sim: &SimConfig, sys: &ParticleSystem<f32>) -> SpeLanePhysics {
        SpeLanePhysics {
            sub: sim.substrate::<f32>(),
            box_len: sys.box_len,
            inv_mass: 1.0 / sys.mass,
        }
    }

    /// Run the MD kernel with SPE offload, additionally recording a timeline
    /// of the simulated execution (PPE track 0, SPE `i` on track `i + 1`)
    /// into the tracer — exportable to `chrome://tracing` via
    /// [`mdea_trace::Tracer::to_chrome_json`]. The plain run path is
    /// [`md_core::device::MdDevice::run`] on [`CellMd`].
    pub fn run_md_traced(
        &self,
        sim: &SimConfig,
        steps: usize,
        run: CellRunConfig,
        tracer: &mut mdea_trace::Tracer,
    ) -> Result<CellRun, CellError> {
        tracer.name_track(mdea_trace::TraceTrack(0), "PPE");
        for s in 0..run.n_spes {
            tracer.name_track(mdea_trace::TraceTrack(1 + s as u32), format!("SPE {s}"));
        }
        let mut sys: ParticleSystem<f32> = init::initialize(sim);
        self.run_md_impl(
            &mut sys,
            sim,
            steps,
            run,
            Some(tracer),
            None,
            md_core::device::HostParallelism::Serial,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_md_impl(
        &self,
        sys: &mut ParticleSystem<f32>,
        sim: &SimConfig,
        steps: usize,
        run: CellRunConfig,
        mut tracer: Option<&mut mdea_trace::Tracer>,
        mut perf: Option<&mut sim_perf::PerfMonitor>,
        par: md_core::device::HostParallelism,
    ) -> Result<CellRun, CellError> {
        assert!(
            run.n_spes >= 1 && run.n_spes <= self.config.n_spes,
            "n_spes must be in 1..={}",
            self.config.n_spes
        );
        let n = sys.n();
        let vv = VelocityVerlet::new(sim.dt as f32);
        let ppe = PpeModel::new(&self.config);
        let dma = DmaEngine::new(&self.config);
        let params = Self::lane_physics(sim, sys);
        // Ensemble upkeep (thermostat) runs on the PPE after the final kick;
        // zero cycles under NVE, so the seed cost model is untouched.
        let ens_cycles = sys.n() as f64 * params.sub.extra_step_ops_per_atom();

        // One fault session per run: the plan decides, the session keeps the
        // retry/exhaustion ledger and the simulated-time cost of recovery.
        #[cfg(feature = "fault-inject")]
        let mut fault = self.fault_plan.map(sim_fault::FaultSession::new);

        // Main memory image: positions then accelerations, quadword layout.
        let mut main_memory = vec![0u8; 2 * n * 16];

        // Bring up the SPEs and their local-store layouts.
        let mut spes: Vec<Spe> = (0..run.n_spes)
            .map(|id| Spe::new(id, &self.config))
            .collect();
        let mut regions: Vec<(LsRegion, LsRegion)> = Vec::with_capacity(run.n_spes);
        for spe in &mut spes {
            let pos = spe.alloc_quads(n)?;
            let acc = spe.alloc_quads(n)?;
            regions.push((pos, acc));
        }
        let slices: Vec<(usize, usize)> = partition(n, run.n_spes);

        // Under hazard-check, shadow every DMA command, tag wait, compute
        // access, and blocking mailbox op with the asynchronous-hardware race
        // detector (one checker per local store).
        #[cfg(feature = "hazard-check")]
        let mut hazard: Vec<HazardChecker> =
            (0..run.n_spes).map(|_| HazardChecker::new()).collect();

        let mut breakdown = CostBreakdown::default();
        let mut stats_total = KernelStats::default();
        let mut launched = false;
        let handles = perf
            .as_deref_mut()
            .map(|p| PerfHandles::register(p, run.n_spes));
        let mut mailbox_round_trips = 0u64;

        // Simulated-time cursor for the (optional) execution timeline.
        let clk = self.config.clock_hz;
        let mut t_now = 0.0f64;
        let ppe_track = mdea_trace::TraceTrack(0);
        let spe_track = |s: usize| mdea_trace::TraceTrack(1 + s as u32);

        let mut pe_total = 0.0f32;
        // `evals` = 1 priming force evaluation + one per time step.
        for eval in 0..=steps {
            if eval > 0 {
                breakdown.ppe += ppe.integration_cycles(n);
                let dur = ppe.integration_cycles(n) / clk;
                if let Some(tr) = tracer.as_deref_mut() {
                    tr.span(ppe_track, "integrate: kick+drift", "ppe", t_now, dur);
                }
                t_now += dur;
                vv.kick_drift(sys);
            }

            // Thread management per Figure 6.
            match run.policy {
                SpawnPolicy::RespawnEveryStep => {
                    for (s, spe) in spes.iter_mut().enumerate() {
                        #[cfg(feature = "fault-inject")]
                        {
                            // A failed spe_create_thread is repeated at full
                            // launch cost.
                            let extra = resolve_fault_site(
                                &mut fault,
                                sim_fault::FaultSite::new(
                                    sim_fault::FaultKind::SpeLaunch,
                                    eval as u64,
                                    s as u32,
                                    0,
                                ),
                                self.config.spawn_cycles,
                                clk,
                            )?;
                            if extra > 0.0 {
                                if let Some(tr) = tracer.as_deref_mut() {
                                    tr.instant(
                                        ppe_track,
                                        format!("fault: spe-launch retry (SPE {s})"),
                                        "fault",
                                        t_now,
                                    );
                                }
                                breakdown.spawn += extra;
                                t_now += extra / clk;
                            }
                        }
                        spe.start_thread();
                        if let Some(tr) = tracer.as_deref_mut() {
                            tr.span(
                                ppe_track,
                                format!("spawn SPE {s} thread"),
                                "spawn",
                                t_now,
                                self.config.spawn_cycles / clk,
                            );
                        }
                        t_now += self.config.spawn_cycles / clk;
                    }
                    breakdown.spawn += run.n_spes as f64 * self.config.spawn_cycles;
                }
                SpawnPolicy::LaunchOnce => {
                    if !launched {
                        for (s, spe) in spes.iter_mut().enumerate() {
                            #[cfg(feature = "fault-inject")]
                            {
                                let extra = resolve_fault_site(
                                    &mut fault,
                                    sim_fault::FaultSite::new(
                                        sim_fault::FaultKind::SpeLaunch,
                                        eval as u64,
                                        s as u32,
                                        0,
                                    ),
                                    self.config.spawn_cycles,
                                    clk,
                                )?;
                                if extra > 0.0 {
                                    if let Some(tr) = tracer.as_deref_mut() {
                                        tr.instant(
                                            ppe_track,
                                            format!("fault: spe-launch retry (SPE {s})"),
                                            "fault",
                                            t_now,
                                        );
                                    }
                                    breakdown.spawn += extra;
                                    t_now += extra / clk;
                                }
                            }
                            spe.start_thread();
                            if let Some(tr) = tracer.as_deref_mut() {
                                tr.span(
                                    ppe_track,
                                    format!("spawn SPE {s} thread"),
                                    "spawn",
                                    t_now,
                                    self.config.spawn_cycles / clk,
                                );
                            }
                            t_now += self.config.spawn_cycles / clk;
                        }
                        breakdown.spawn += run.n_spes as f64 * self.config.spawn_cycles;
                        launched = true;
                    } else {
                        // "Signal them using mailboxes when there is more
                        // data to process."
                        #[allow(clippy::unused_enumerate_index)]
                        // index feeds the hazard checker when the feature is on
                        for (_s, spe) in spes.iter_mut().enumerate() {
                            #[cfg(feature = "fault-inject")]
                            {
                                // A dropped mailbox message costs a fresh
                                // PPE service round plus the SPE-side read.
                                let extra = resolve_fault_site(
                                    &mut fault,
                                    sim_fault::FaultSite::new(
                                        sim_fault::FaultKind::MailboxDrop,
                                        eval as u64,
                                        _s as u32,
                                        0,
                                    ),
                                    self.config.ppe_service_cycles + self.config.mailbox_cycles,
                                    clk,
                                )?;
                                if extra > 0.0 {
                                    if let Some(tr) = tracer.as_deref_mut() {
                                        tr.instant(
                                            ppe_track,
                                            format!("fault: mailbox-drop resend (SPE {_s})"),
                                            "fault",
                                            t_now,
                                        );
                                    }
                                    breakdown.mailbox += extra;
                                    t_now += extra / clk;
                                }
                            }
                            #[cfg(feature = "hazard-check")]
                            hazard[_s].note_mailbox_write(_s, spe.inbox.is_full());
                            spe.inbox.write(eval as u32);
                        }
                        let dur = run.n_spes as f64 * self.config.ppe_service_cycles / clk;
                        if let Some(tr) = tracer.as_deref_mut() {
                            tr.span(ppe_track, "mailbox handshake", "mailbox", t_now, dur);
                        }
                        t_now += dur;
                        breakdown.mailbox += run.n_spes as f64 * self.config.ppe_service_cycles;
                    }
                }
            }

            // Serialize current positions into main memory.
            for (i, p) in sys.positions.iter().enumerate() {
                write_quad(&mut main_memory, i, [p.x, p.y, p.z, 0.0]);
            }

            // Each SPE: DMA in all positions, compute its slice, DMA out.
            // SPEs run concurrently; the step's wall time is the slowest SPE.
            //
            // The simulated concurrency maps onto host threads: the main
            // memory image splits into the shared position half (read by
            // every SPE's get) and per-SPE acceleration windows (each SPE
            // puts only its own slice), so each lane owns disjoint state.
            // Fault sites are peeked in-lane (pure) and committed below in
            // SPE order; every reduction — cost maxima, kernel stats, PE,
            // perf counters, tracer spans — happens in the serial fold, so
            // the run is bitwise identical to the serial loop at any host
            // thread count.
            let (pos_mem, acc_mem) = main_memory.split_at_mut(n * 16);
            let pos_mem: &[u8] = pos_mem;
            let mut lanes: Vec<SpeLane> = Vec::with_capacity(run.n_spes);
            {
                let mut acc_rest: &mut [u8] = acc_mem;
                #[cfg(feature = "hazard-check")]
                let mut hz_iter = hazard.iter_mut();
                for (s, spe) in spes.iter_mut().enumerate() {
                    let (lo, hi) = slices[s];
                    let (window, rest) = std::mem::take(&mut acc_rest).split_at_mut((hi - lo) * 16);
                    acc_rest = rest;
                    lanes.push(SpeLane {
                        spe,
                        acc_out: window,
                        // `hazard` is built with exactly one checker per SPE
                        // a few lines up; the iterator cannot run dry.
                        #[cfg(feature = "hazard-check")]
                        hazard: hz_iter.next().expect("one checker per SPE"), // sim-vet: allow(panic-discipline)
                    });
                }
            }
            #[cfg(feature = "fault-inject")]
            let fault_peek = fault.as_ref();
            let lane_outs = md_core::parallel::map_lanes(
                par,
                &mut lanes,
                |s, lane: &mut SpeLane| -> Result<SpeLaneOut, CellError> {
                    let spe = &mut *lane.spe;
                    let mut round_trips = 0u64;
                    if run.policy == SpawnPolicy::LaunchOnce && eval > 0 {
                        #[cfg(feature = "hazard-check")]
                        lane.hazard.note_mailbox_read(s, spe.inbox.is_empty());
                        let _go = spe.inbox.read();
                        spe.charge(self.config.mailbox_cycles);
                        round_trips += 1;
                    }
                    let (pos_r, acc_r) = regions[s];
                    let (lo, hi) = slices[s];

                    #[cfg(feature = "hazard-check")]
                    lane.hazard.dma_issue(0, Dir::Get, pos_r);
                    let dma_in = dma.get(pos_mem, &mut spe.local_store, pos_r, 0, n * 16)?;
                    // The functional transfer above always lands pristine data;
                    // injected failures only re-model the transfer's cost, so
                    // physics is untouched by construction. Failed transfer →
                    // full re-issue of the get; tag-group wait spins out → spin
                    // window plus a fresh issue-and-wait (two transfers' worth).
                    #[cfg(feature = "fault-inject")]
                    let (dma_in, fault_get, fault_tag) = {
                        let site_get = sim_fault::FaultSite::new(
                            sim_fault::FaultKind::DmaTransfer,
                            eval as u64,
                            s as u32,
                            0,
                        );
                        let site_tag = sim_fault::FaultSite::new(
                            sim_fault::FaultKind::TagWaitTimeout,
                            eval as u64,
                            s as u32,
                            0,
                        );
                        let out_get = peek_fault_site(fault_peek, site_get);
                        let out_tag = peek_fault_site(fault_peek, site_tag);
                        let reissue = peeked_extra_cycles(out_get, dma_in);
                        let spin = peeked_extra_cycles(out_tag, 2.0 * dma_in);
                        (
                            dma_in + reissue + spin,
                            (site_get, out_get, dma_in),
                            (site_tag, out_tag, 2.0 * dma_in),
                        )
                    };
                    #[cfg(feature = "hazard-check")]
                    {
                        // The functional engine transfers synchronously; the
                        // modeled hardware pattern is issue → tag wait → compute.
                        lane.hazard.tag_wait(0);
                        lane.hazard.compute_read(pos_r);
                        lane.hazard.compute_write(acc_r);
                    }
                    // Physics-once split (DESIGN.md §17): under the memo the
                    // slice's physics comes from the shared batched kernel
                    // and the cycle charge is the closed-form replay — both
                    // bitwise the interpretive loop's results.
                    let (pe_slice, stats) =
                        if self.eval_memo && run.variant == SpeKernelVariant::SimdAcceleration {
                            crate::kernel::compute_accelerations_shared(
                                &mut spe.local_store,
                                pos_r,
                                acc_r,
                                lo..hi,
                                n,
                                params,
                                &self.config.costs,
                            )
                        } else {
                            compute_accelerations(
                                &mut spe.local_store,
                                pos_r,
                                acc_r,
                                lo..hi,
                                n,
                                params,
                                run.variant,
                                &self.config.costs,
                            )
                        };
                    // DMA the computed slice back (a sub-range of the acc region,
                    // landing in this SPE's window of the acceleration image).
                    let slice_view = LsRegion {
                        offset: acc_r.offset + lo * 16,
                        len: (hi - lo) * 16,
                    };
                    #[cfg(feature = "hazard-check")]
                    lane.hazard.dma_issue(1, Dir::Put, slice_view);
                    let dma_out = dma.put(
                        &spe.local_store,
                        lane.acc_out,
                        slice_view,
                        0,
                        (hi - lo) * 16,
                    )?;
                    #[cfg(feature = "fault-inject")]
                    let (dma_out, fault_put) = {
                        let site = sim_fault::FaultSite::new(
                            sim_fault::FaultKind::DmaTransfer,
                            eval as u64,
                            s as u32,
                            1,
                        );
                        let out = peek_fault_site(fault_peek, site);
                        let reissue = peeked_extra_cycles(out, dma_out);
                        (dma_out + reissue, (site, out, dma_out))
                    };
                    #[cfg(feature = "hazard-check")]
                    lane.hazard.tag_wait(1);
                    // Completion notification to the PPE.
                    #[cfg(feature = "hazard-check")]
                    lane.hazard.note_mailbox_write(s, spe.outbox.is_full());
                    spe.outbox.write(1);
                    #[cfg(feature = "hazard-check")]
                    lane.hazard.note_mailbox_read(s, spe.outbox.is_empty());
                    let _ = spe.outbox.read();
                    round_trips += 1;

                    spe.charge(dma_in + stats.cycles + self.config.mailbox_cycles + dma_out);
                    if run.policy == SpawnPolicy::RespawnEveryStep {
                        spe.stop_thread();
                    }
                    Ok(SpeLaneOut {
                        dma_in,
                        dma_out,
                        stats,
                        pe_slice,
                        round_trips,
                        #[cfg(feature = "fault-inject")]
                        faults: [fault_get, fault_tag, fault_put],
                    })
                },
            );

            // Serial fold in SPE order: fault ledger, reductions, timeline.
            let mut max_spe_cycles = 0.0f64;
            let mut max_spe_dma = 0.0f64;
            pe_total = 0.0;
            for (s, lane_out) in lane_outs.into_iter().enumerate() {
                let out = lane_out?;
                #[cfg(feature = "fault-inject")]
                {
                    let [g, t, p] = out.faults;
                    let reissue = commit_fault_site(&mut fault, g.0, g.1, g.2, clk)?;
                    let spin = commit_fault_site(&mut fault, t.0, t.1, t.2, clk)?;
                    if reissue + spin > 0.0 {
                        if let Some(tr) = tracer.as_deref_mut() {
                            tr.instant(spe_track(s), "fault: dma get retried", "fault", t_now);
                        }
                    }
                    let put_reissue = commit_fault_site(&mut fault, p.0, p.1, p.2, clk)?;
                    if put_reissue > 0.0 {
                        if let Some(tr) = tracer.as_deref_mut() {
                            tr.instant(spe_track(s), "fault: dma put retried", "fault", t_now);
                        }
                    }
                }
                let (lo, hi) = slices[s];
                let mbox = self.config.mailbox_cycles;
                let spe_cycles = out.stats.cycles + mbox;
                mailbox_round_trips += out.round_trips;
                if let Some(tr) = tracer.as_deref_mut() {
                    // The SPEs run concurrently: each track starts at the
                    // same phase-begin time.
                    let mut t = t_now;
                    tr.span(
                        spe_track(s),
                        "DMA get positions",
                        "dma",
                        t,
                        out.dma_in / clk,
                    );
                    t += out.dma_in / clk;
                    tr.span(
                        spe_track(s),
                        format!("accel kernel [{lo}..{hi})"),
                        "compute",
                        t,
                        out.stats.cycles / clk,
                    );
                    t += out.stats.cycles / clk;
                    tr.span(spe_track(s), "mailbox done", "mailbox", t, mbox / clk);
                    t += mbox / clk;
                    tr.span(
                        spe_track(s),
                        "DMA put accelerations",
                        "dma",
                        t,
                        out.dma_out / clk,
                    );
                }
                max_spe_cycles = max_spe_cycles.max(spe_cycles);
                max_spe_dma = max_spe_dma.max(out.dma_in + out.dma_out);
                stats_total.pairs_tested += out.stats.pairs_tested;
                stats_total.interactions += out.stats.interactions;
                pe_total += out.pe_slice;
                if let (Some(p), Some(h)) = (perf.as_deref_mut(), handles.as_ref()) {
                    p.add_u64(h.spe_dma_bytes[s], ((n + hi - lo) * 16) as u64);
                    p.add(h.spe_dma_stall[s], out.dma_in + out.dma_out);
                    p.add_u64(h.dma_bytes_in, (n * 16) as u64);
                    p.add_u64(h.dma_bytes_out, ((hi - lo) * 16) as u64);
                }
            }
            breakdown.compute += max_spe_cycles;
            breakdown.dma += max_spe_dma;
            t_now += (max_spe_cycles + max_spe_dma) / clk;

            // Read accelerations back into the host-side system.
            for i in 0..n {
                let q = read_quad(&main_memory, n + i);
                sys.accelerations[i] = vecmath::Vec3::new(q[0], q[1], q[2]);
            }

            if eval > 0 {
                breakdown.ppe += ppe.integration_cycles(n);
                let dur = ppe.integration_cycles(n) / clk;
                if let Some(tr) = tracer.as_deref_mut() {
                    tr.span(ppe_track, "integrate: kick", "ppe", t_now, dur);
                }
                t_now += dur;
                vv.kick(sys);
                params.sub.apply_thermostat(sys);
                breakdown.ppe += ens_cycles;
                t_now += ens_cycles / clk;
            }

            if let (Some(p), Some(h)) = (perf.as_deref_mut(), handles.as_ref()) {
                let flops = stats_total.pairs_tested as f64 * FLOPS_PER_PAIR
                    + stats_total.interactions as f64 * FLOPS_PER_INTERACTION;
                let simd = simd_fraction(run.variant) * flops;
                p.record_total(h.simd_flops, simd);
                p.record_total(h.scalar_flops, flops - simd);
                p.record_total(h.pairs, stats_total.pairs_tested as f64);
                p.record_total(h.interactions, stats_total.interactions as f64);
                p.record_total(h.dma_stall_cycles, breakdown.dma);
                p.record_total(h.mailbox_round_trips, mailbox_round_trips as f64);
                p.sample_all(breakdown.total() / clk);
            }
        }

        // Surface any detected races on the timeline as instant markers.
        #[cfg(feature = "hazard-check")]
        if let Some(tr) = tracer {
            for (s, hz) in hazard.iter().enumerate() {
                hz.emit_to_tracer(tr, spe_track(s), t_now);
            }
        }

        stats_total.cycles = breakdown.compute;
        let pe = (pe_total * 0.5) as f64;
        Ok(CellRun {
            sim_seconds: breakdown.total() / self.config.clock_hz,
            breakdown,
            energies: EnergyReport::measure(sys, pe),
            kernel_stats: stats_total,
            config: run,
            #[cfg(feature = "fault-inject")]
            faults: fault.map_or_else(sim_fault::FaultStats::default, |f| f.stats()),
        })
    }

    /// Tiled, double-buffered SPE offload — the production formulation for
    /// systems too large for the resident port: each SPE keeps only its own
    /// atom slice and two j-tile buffers in the local store, streaming the
    /// position array through tile-sized DMA transfers. Double buffering
    /// overlaps each tile's DMA with the previous tile's compute, so the
    /// critical path per tile is `max(compute, dma)`, not their sum.
    ///
    /// Physics is identical to [`Self::run_md`]; use this when `run_md`
    /// returns [`LsOverflow`]. Requires the fully optimized kernel variant.
    pub fn run_md_tiled(
        &self,
        sim: &SimConfig,
        steps: usize,
        run: CellRunConfig,
        tile_atoms: usize,
    ) -> Result<CellRun, CellError> {
        assert!(
            run.n_spes >= 1 && run.n_spes <= self.config.n_spes,
            "n_spes must be in 1..={}",
            self.config.n_spes
        );
        assert!(tile_atoms >= 1, "tile must hold at least one atom");
        let mut sys: ParticleSystem<f32> = init::initialize(sim);
        let n = sys.n();
        let vv = VelocityVerlet::new(sim.dt as f32);
        let ppe = PpeModel::new(&self.config);
        let dma = DmaEngine::new(&self.config);
        let params = Self::lane_physics(sim, &sys);
        let ens_cycles = n as f64 * params.sub.extra_step_ops_per_atom();

        let mut main_memory = vec![0u8; 2 * n * 16];
        let mut spes: Vec<Spe> = (0..run.n_spes)
            .map(|id| Spe::new(id, &self.config))
            .collect();
        let slices: Vec<(usize, usize)> = partition(n, run.n_spes);

        // Local-store layout per SPE: own positions + own accelerations +
        // two j-tile buffers.
        struct TiledRegions {
            pos_i: LsRegion,
            acc: LsRegion,
            tiles: [LsRegion; 2],
        }
        let mut regions: Vec<TiledRegions> = Vec::with_capacity(run.n_spes);
        for (s, spe) in spes.iter_mut().enumerate() {
            let (lo, hi) = slices[s];
            regions.push(TiledRegions {
                pos_i: spe.alloc_quads(hi - lo)?,
                acc: spe.alloc_quads(hi - lo)?,
                tiles: [spe.alloc_quads(tile_atoms)?, spe.alloc_quads(tile_atoms)?],
            });
        }

        let mut breakdown = CostBreakdown::default();
        let mut stats_total = KernelStats::default();
        let mut launched = false;
        let mut pe_total = 0.0f32;

        for eval in 0..=steps {
            if eval > 0 {
                breakdown.ppe += ppe.integration_cycles(n);
                vv.kick_drift(&mut sys);
            }
            match run.policy {
                SpawnPolicy::RespawnEveryStep => {
                    for spe in &mut spes {
                        spe.start_thread();
                    }
                    breakdown.spawn += run.n_spes as f64 * self.config.spawn_cycles;
                }
                SpawnPolicy::LaunchOnce => {
                    if !launched {
                        for spe in &mut spes {
                            spe.start_thread();
                        }
                        breakdown.spawn += run.n_spes as f64 * self.config.spawn_cycles;
                        launched = true;
                    } else {
                        for spe in &mut spes {
                            spe.inbox.write(eval as u32);
                        }
                        breakdown.mailbox += run.n_spes as f64 * self.config.ppe_service_cycles;
                    }
                }
            }

            for (i, p) in sys.positions.iter().enumerate() {
                write_quad(&mut main_memory, i, [p.x, p.y, p.z, 0.0]);
            }

            let mut max_spe_path = 0.0f64;
            pe_total = 0.0;
            for (s, spe) in spes.iter_mut().enumerate() {
                if run.policy == SpawnPolicy::LaunchOnce && eval > 0 {
                    let _ = spe.inbox.read();
                    spe.charge(self.config.mailbox_cycles);
                }
                let r = &regions[s];
                let (lo, hi) = slices[s];
                let slice_len = hi - lo;

                // Own positions in; accumulator zeroed.
                let dma_i = dma.get(
                    &main_memory,
                    &mut spe.local_store,
                    r.pos_i,
                    lo * 16,
                    slice_len * 16,
                )?;
                for ii in 0..slice_len {
                    spe.local_store.store_quad(r.acc, ii, [0.0; 4]);
                }
                let zero_cycles = slice_len as f64;

                // Stream j tiles with double buffering: DMA of tile t+1
                // overlaps compute of tile t, so the path is
                // dma(0) + Σ max(compute(t), dma(t+1)) + compute(last).
                let n_tiles = n.div_ceil(tile_atoms);
                let mut compute_cycles: Vec<f64> = Vec::with_capacity(n_tiles);
                let mut dma_cycles: Vec<f64> = Vec::with_capacity(n_tiles);
                for t in 0..n_tiles {
                    let j_lo = t * tile_atoms;
                    let j_hi = (j_lo + tile_atoms).min(n);
                    let count = j_hi - j_lo;
                    let buf = r.tiles[t % 2];
                    let d = dma.get(
                        &main_memory,
                        &mut spe.local_store,
                        buf,
                        j_lo * 16,
                        count * 16,
                    )?;
                    let (_, stats) = crate::kernel::compute_accelerations_tiled(
                        &mut spe.local_store,
                        r.pos_i,
                        lo,
                        slice_len,
                        buf,
                        j_lo,
                        count,
                        r.acc,
                        params,
                        run.variant,
                        &self.config.costs,
                    );
                    dma_cycles.push(d);
                    compute_cycles.push(stats.cycles);
                    stats_total.pairs_tested += stats.pairs_tested;
                    stats_total.interactions += stats.interactions;
                }
                let mut path = dma_i + zero_cycles + dma_cycles[0];
                for t in 0..n_tiles {
                    let next_dma = if t + 1 < n_tiles {
                        dma_cycles[t + 1]
                    } else {
                        0.0
                    };
                    path += compute_cycles[t].max(next_dma);
                }

                // Results out; PE slice read from the accumulator lanes.
                let mut pe_slice = 0.0f32;
                for ii in 0..slice_len {
                    let q = spe.local_store.load_quad(r.acc, ii);
                    write_quad(&mut main_memory, n + lo + ii, q);
                    pe_slice += q[3];
                }
                let dma_out = dma.transfer_cycles(slice_len * 16);
                spe.outbox.write(1);
                let _ = spe.outbox.read();
                path += dma_out + self.config.mailbox_cycles;

                spe.charge(path);
                max_spe_path = max_spe_path.max(path);
                pe_total += pe_slice;
                if run.policy == SpawnPolicy::RespawnEveryStep {
                    spe.stop_thread();
                }
            }
            breakdown.compute += max_spe_path;

            for i in 0..n {
                let q = read_quad(&main_memory, n + i);
                sys.accelerations[i] = vecmath::Vec3::new(q[0], q[1], q[2]);
            }

            if eval > 0 {
                breakdown.ppe += ppe.integration_cycles(n);
                vv.kick(&mut sys);
                params.sub.apply_thermostat(&mut sys);
                breakdown.ppe += ens_cycles;
            }
        }

        stats_total.cycles = breakdown.compute;
        Ok(CellRun {
            sim_seconds: breakdown.total() / self.config.clock_hz,
            breakdown,
            energies: EnergyReport::measure(&sys, (pe_total * 0.5) as f64),
            kernel_stats: stats_total,
            config: run,
            #[cfg(feature = "fault-inject")]
            faults: sim_fault::FaultStats::default(),
        })
    }

    /// Double-precision SPE offload — the capability the paper flags as the
    /// Cell's open question ("the outstanding issues are the availability and
    /// support for double-precision floating-point calculations"). Physics is
    /// f64; the DP unit's ~7x arithmetic penalty and the doubled local-store
    /// footprint (two quadwords per atom per array) are both modeled, so this
    /// run both costs more time *and* hits the 256 KB wall at half the atom
    /// count of the f32 port.
    pub fn run_md_double(
        &self,
        sim: &SimConfig,
        steps: usize,
        run: CellRunConfig,
    ) -> Result<CellRun, CellError> {
        assert!(
            run.n_spes >= 1 && run.n_spes <= self.config.n_spes,
            "n_spes must be in 1..={}",
            self.config.n_spes
        );
        let mut sys: ParticleSystem<f64> = init::initialize(sim);
        let n = sys.n();
        let vv = VelocityVerlet::new(sim.dt);
        let ppe = PpeModel::new(&self.config);
        let dma = DmaEngine::new(&self.config);
        let params = crate::kernel::SpeLanePhysicsF64 {
            sub: sim.substrate::<f64>(),
            box_len: sys.box_len,
            inv_mass: 1.0 / sys.mass,
        };
        let ens_cycles = n as f64 * params.sub.extra_step_ops_per_atom();

        // Two quadwords per atom per array.
        let mut main_memory = vec![0u8; 4 * n * 16];
        let mut spes: Vec<Spe> = (0..run.n_spes)
            .map(|id| Spe::new(id, &self.config))
            .collect();
        let mut regions: Vec<(LsRegion, LsRegion)> = Vec::with_capacity(run.n_spes);
        for spe in &mut spes {
            let pos = spe.alloc_quads(2 * n)?;
            let acc = spe.alloc_quads(2 * n)?;
            regions.push((pos, acc));
        }
        let slices: Vec<(usize, usize)> = partition(n, run.n_spes);

        let mut breakdown = CostBreakdown::default();
        let mut stats_total = KernelStats::default();
        let mut launched = false;
        let mut pe_total = 0.0f64;

        for eval in 0..=steps {
            if eval > 0 {
                breakdown.ppe += ppe.integration_cycles(n);
                vv.kick_drift(&mut sys);
            }
            match run.policy {
                SpawnPolicy::RespawnEveryStep => {
                    for spe in &mut spes {
                        spe.start_thread();
                    }
                    breakdown.spawn += run.n_spes as f64 * self.config.spawn_cycles;
                }
                SpawnPolicy::LaunchOnce => {
                    if !launched {
                        for spe in &mut spes {
                            spe.start_thread();
                        }
                        breakdown.spawn += run.n_spes as f64 * self.config.spawn_cycles;
                        launched = true;
                    } else {
                        for spe in &mut spes {
                            spe.inbox.write(eval as u32);
                        }
                        breakdown.mailbox += run.n_spes as f64 * self.config.ppe_service_cycles;
                    }
                }
            }

            for (i, p) in sys.positions.iter().enumerate() {
                write_dquad(&mut main_memory, 2 * i, [p.x, p.y]);
                write_dquad(&mut main_memory, 2 * i + 1, [p.z, 0.0]);
            }

            let mut max_spe_cycles = 0.0f64;
            let mut max_spe_dma = 0.0f64;
            pe_total = 0.0;
            for (s, spe) in spes.iter_mut().enumerate() {
                if run.policy == SpawnPolicy::LaunchOnce && eval > 0 {
                    let _ = spe.inbox.read();
                    spe.charge(self.config.mailbox_cycles);
                }
                let (pos_r, acc_r) = regions[s];
                let (lo, hi) = slices[s];
                let dma_in = dma.get(&main_memory, &mut spe.local_store, pos_r, 0, 2 * n * 16)?;
                let (pe_slice, stats) = crate::kernel::compute_accelerations_f64(
                    &mut spe.local_store,
                    pos_r,
                    acc_r,
                    lo..hi,
                    n,
                    params,
                    &self.config.costs,
                );
                let slice_view = LsRegion {
                    offset: acc_r.offset + 2 * lo * 16,
                    len: 2 * (hi - lo) * 16,
                };
                let dma_out = dma.put(
                    &spe.local_store,
                    &mut main_memory,
                    slice_view,
                    (2 * n + 2 * lo) * 16,
                    2 * (hi - lo) * 16,
                )?;
                spe.outbox.write(1);
                let _ = spe.outbox.read();
                let spe_cycles = stats.cycles + self.config.mailbox_cycles;
                spe.charge(dma_in + spe_cycles + dma_out);
                max_spe_cycles = max_spe_cycles.max(spe_cycles);
                max_spe_dma = max_spe_dma.max(dma_in + dma_out);
                stats_total.pairs_tested += stats.pairs_tested;
                stats_total.interactions += stats.interactions;
                pe_total += pe_slice;
                if run.policy == SpawnPolicy::RespawnEveryStep {
                    spe.stop_thread();
                }
            }
            breakdown.compute += max_spe_cycles;
            breakdown.dma += max_spe_dma;

            for i in 0..n {
                let [ax, ay] = read_dquad(&main_memory, 2 * n + 2 * i);
                let [az, _] = read_dquad(&main_memory, 2 * n + 2 * i + 1);
                sys.accelerations[i] = vecmath::Vec3::new(ax, ay, az);
            }

            if eval > 0 {
                breakdown.ppe += ppe.integration_cycles(n);
                vv.kick(&mut sys);
                params.sub.apply_thermostat(&mut sys);
                breakdown.ppe += ens_cycles;
            }
        }

        stats_total.cycles = breakdown.compute;
        Ok(CellRun {
            sim_seconds: breakdown.total() / self.config.clock_hz,
            breakdown,
            energies: EnergyReport::measure(&sys, pe_total * 0.5),
            kernel_stats: stats_total,
            config: run,
            #[cfg(feature = "fault-inject")]
            faults: sim_fault::FaultStats::default(),
        })
    }

    /// PPE-only execution of the whole kernel (the paper's 26x-slower
    /// baseline): the scalar `Original` variant run on the PPE with its CPI
    /// penalty; no SPEs, no DMA, no thread launches.
    pub fn run_md_ppe_only(&self, sim: &SimConfig, steps: usize) -> CellRun {
        let mut sys: ParticleSystem<f32> = init::initialize(sim);
        self.run_md_ppe_only_impl(&mut sys, sim, steps)
    }

    fn run_md_ppe_only_impl(
        &self,
        sys: &mut ParticleSystem<f32>,
        sim: &SimConfig,
        steps: usize,
    ) -> CellRun {
        let n = sys.n();
        let vv = VelocityVerlet::new(sim.dt as f32);
        let ppe = PpeModel::new(&self.config);
        let params = Self::lane_physics(sim, sys);
        let ens_cycles = n as f64 * params.sub.extra_step_ops_per_atom();

        // The PPE works straight out of main memory; reuse the kernel with a
        // scratch "store" big enough for both arrays. The layout is fixed, so
        // the regions are constructed directly — nothing can fail here.
        let mut scratch = LocalStore::new(2 * n * 16);
        let pos_r = LsRegion {
            offset: 0,
            len: n * 16,
        };
        let acc_r = LsRegion {
            offset: n * 16,
            len: n * 16,
        };

        let mut breakdown = CostBreakdown::default();
        let mut stats_total = KernelStats::default();
        let mut pe_total = 0.0f32;

        for eval in 0..=steps {
            if eval > 0 {
                breakdown.ppe += ppe.integration_cycles(n);
                vv.kick_drift(sys);
            }
            for (i, p) in sys.positions.iter().enumerate() {
                scratch.store_quad(pos_r, i, [p.x, p.y, p.z, 0.0]);
            }
            let (pe, stats) = compute_accelerations(
                &mut scratch,
                pos_r,
                acc_r,
                0..n,
                n,
                params,
                SpeKernelVariant::Original,
                &self.config.costs,
            );
            breakdown.compute += ppe.scale_kernel_cycles(stats.cycles);
            stats_total.pairs_tested += stats.pairs_tested;
            stats_total.interactions += stats.interactions;
            pe_total = pe;
            for i in 0..n {
                let q = scratch.load_quad(acc_r, i);
                sys.accelerations[i] = vecmath::Vec3::new(q[0], q[1], q[2]);
            }
            if eval > 0 {
                breakdown.ppe += ppe.integration_cycles(n);
                vv.kick(sys);
                params.sub.apply_thermostat(sys);
                breakdown.ppe += ens_cycles;
            }
        }

        stats_total.cycles = breakdown.compute;
        CellRun {
            sim_seconds: breakdown.total() / self.config.clock_hz,
            breakdown,
            energies: EnergyReport::measure(sys, (pe_total * 0.5) as f64),
            kernel_stats: stats_total,
            config: CellRunConfig {
                n_spes: 0,
                policy: SpawnPolicy::LaunchOnce,
                variant: SpeKernelVariant::Original,
            },
            #[cfg(feature = "fault-inject")]
            faults: sim_fault::FaultStats::default(),
        }
    }

    /// Figure 5 measurement: simulated seconds for ONE acceleration-function
    /// invocation (2048 atoms in the paper) on a single SPE at the given
    /// optimization stage. DMA included; thread launch excluded (the figure
    /// times the function, not the launch).
    pub fn time_single_spe_accel(
        &self,
        sim: &SimConfig,
        variant: SpeKernelVariant,
    ) -> Result<f64, CellError> {
        let sys: ParticleSystem<f32> = init::initialize(sim);
        let n = sys.n();
        let dma = DmaEngine::new(&self.config);
        let params = Self::lane_physics(sim, &sys);

        let mut spe = Spe::new(0, &self.config);
        let pos_r = spe.alloc_quads(n)?;
        let acc_r = spe.alloc_quads(n)?;
        let mut main_memory = vec![0u8; 2 * n * 16];
        for (i, p) in sys.positions.iter().enumerate() {
            write_quad(&mut main_memory, i, [p.x, p.y, p.z, 0.0]);
        }
        let dma_in = dma.get(&main_memory, &mut spe.local_store, pos_r, 0, n * 16)?;
        let (_, stats) = compute_accelerations(
            &mut spe.local_store,
            pos_r,
            acc_r,
            0..n,
            n,
            params,
            variant,
            &self.config.costs,
        );
        let dma_out = dma.put(&spe.local_store, &mut main_memory, acc_r, n * 16, n * 16)?;
        Ok((dma_in + stats.cycles + dma_out) / self.config.clock_hz)
    }
}

/// Flop estimate per examined pair (minimum image + distance + cutoff test)
/// — for counter reporting only; simulated time comes from the cost model.
const FLOPS_PER_PAIR: f64 = 14.0;
/// Extra flops for an interacting pair (LJ energy/force + accumulate).
const FLOPS_PER_INTERACTION: f64 = 20.0;

/// Fraction of the kernel's flops issued through SIMD lanes at each Figure 5
/// optimization stage (each SIMDized phase covers about a quarter of the
/// per-pair arithmetic).
fn simd_fraction(variant: SpeKernelVariant) -> f64 {
    match variant {
        SpeKernelVariant::Original | SpeKernelVariant::Copysign => 0.0,
        SpeKernelVariant::SimdUnitCell => 0.25,
        SpeKernelVariant::SimdDirection => 0.5,
        SpeKernelVariant::SimdLength => 0.75,
        SpeKernelVariant::SimdAcceleration => 1.0,
    }
}

/// Era-appropriate Cell counters, registered once per instrumented run.
struct PerfHandles {
    /// Per-SPE DMA traffic (get + put), indexed by SPE id.
    spe_dma_bytes: Vec<sim_perf::CounterHandle>,
    /// Per-SPE cycles spent waiting on DMA completion.
    spe_dma_stall: Vec<sim_perf::CounterHandle>,
    dma_bytes_in: sim_perf::CounterHandle,
    dma_bytes_out: sim_perf::CounterHandle,
    /// Critical-path DMA cycles (max across concurrent SPEs per step).
    dma_stall_cycles: sim_perf::CounterHandle,
    mailbox_round_trips: sim_perf::CounterHandle,
    simd_flops: sim_perf::CounterHandle,
    scalar_flops: sim_perf::CounterHandle,
    pairs: sim_perf::CounterHandle,
    interactions: sim_perf::CounterHandle,
}

impl PerfHandles {
    fn register(perf: &mut sim_perf::PerfMonitor, n_spes: usize) -> Self {
        Self {
            spe_dma_bytes: (0..n_spes)
                .map(|s| perf.register(format!("cell.spe{s}.dma.bytes"), "bytes"))
                .collect(),
            spe_dma_stall: (0..n_spes)
                .map(|s| perf.register(format!("cell.spe{s}.dma.stall_cycles"), "cycles"))
                .collect(),
            dma_bytes_in: perf.register("cell.dma.bytes_in", "bytes"),
            dma_bytes_out: perf.register("cell.dma.bytes_out", "bytes"),
            dma_stall_cycles: perf.register("cell.dma.stall_cycles", "cycles"),
            mailbox_round_trips: perf.register("cell.mailbox.round_trips", "events"),
            simd_flops: perf.register("cell.flops.simd", "flops"),
            scalar_flops: perf.register("cell.flops.scalar", "flops"),
            pairs: perf.register("cell.kernel.pairs_tested", "pairs"),
            interactions: perf.register("cell.kernel.interactions", "pairs"),
        }
    }
}

/// Apply the armed fault schedule to one injection site: walk the plan's
/// per-retry decisions, charge `unit_cycles` of simulated recovery time per
/// failure, and return the total extra cycles — or the typed exhaustion
/// error once the retry budget is spent, so the harness supervisor can
/// restore a checkpoint or fall back to the reference device.
/// Mutable state one simulated SPE owns during the force phase: the SPE
/// itself (local store, mailboxes, cycle counter), its window of the main
/// memory acceleration image, and — under hazard-check — its race detector.
/// Lanes are disjoint, so the phase can run on host threads.
struct SpeLane<'a> {
    spe: &'a mut Spe,
    acc_out: &'a mut [u8],
    #[cfg(feature = "hazard-check")]
    hazard: &'a mut HazardChecker,
}

/// What one SPE lane reports back for the serial in-order fold.
struct SpeLaneOut {
    /// Fault-adjusted cycle cost of the position get.
    dma_in: f64,
    /// Fault-adjusted cycle cost of the acceleration put.
    dma_out: f64,
    stats: KernelStats,
    pe_slice: f32,
    /// Mailbox round trips this SPE performed this evaluation (1 or 2).
    round_trips: u64,
    /// Peeked injection sites in resolution order (get, tag wait, put):
    /// `(site, outcome, unit recovery cycles)`, committed to the session's
    /// ledger in SPE order by the fold.
    #[cfg(feature = "fault-inject")]
    faults: [(sim_fault::FaultSite, sim_fault::SiteOutcome, f64); 3],
}

/// Lane-side half of [`resolve_fault_site`]: the pure plan walk.
#[cfg(feature = "fault-inject")]
fn peek_fault_site(
    fault: Option<&sim_fault::FaultSession>,
    site: sim_fault::FaultSite,
) -> sim_fault::SiteOutcome {
    fault.map_or_else(sim_fault::SiteOutcome::clean, |f| f.peek(site))
}

/// Recovery cycles a peeked outcome will charge (0 when the site exhausts —
/// the run aborts instead of paying for the failed attempts).
#[cfg(feature = "fault-inject")]
fn peeked_extra_cycles(out: sim_fault::SiteOutcome, unit_cycles: f64) -> f64 {
    if out.exhausted {
        0.0
    } else {
        unit_cycles * f64::from(out.failures)
    }
}

/// Fold-side half of [`resolve_fault_site`]: replay a peeked outcome into
/// the session's ledger exactly as the serial walk would have — commit,
/// abort on exhaustion, then charge the recovery time.
#[cfg(feature = "fault-inject")]
fn commit_fault_site(
    fault: &mut Option<sim_fault::FaultSession>,
    site: sim_fault::FaultSite,
    out: sim_fault::SiteOutcome,
    unit_cycles: f64,
    clock_hz: f64,
) -> Result<f64, CellError> {
    let Some(sess) = fault.as_mut() else {
        return Ok(0.0);
    };
    sess.commit(out);
    if out.exhausted {
        return Err(CellError::FaultExhausted {
            kind: site.kind,
            eval: site.eval,
            unit: site.unit,
        });
    }
    let extra = unit_cycles * f64::from(out.failures);
    if extra > 0.0 {
        sess.charge(extra / clock_hz);
    }
    Ok(extra)
}

/// Apply the armed fault schedule to one injection site in place (the serial
/// peek-and-commit walk; see [`peek_fault_site`] / [`commit_fault_site`] for
/// the split the host-parallel SPE lanes use).
#[cfg(feature = "fault-inject")]
fn resolve_fault_site(
    fault: &mut Option<sim_fault::FaultSession>,
    site: sim_fault::FaultSite,
    unit_cycles: f64,
    clock_hz: f64,
) -> Result<f64, CellError> {
    let Some(sess) = fault.as_mut() else {
        return Ok(0.0);
    };
    let out = sess.outcome(site);
    if out.exhausted {
        return Err(CellError::FaultExhausted {
            kind: site.kind,
            eval: site.eval,
            unit: site.unit,
        });
    }
    let extra = unit_cycles * f64::from(out.failures);
    if extra > 0.0 {
        sess.charge(extra / clock_hz);
    }
    Ok(extra)
}

/// Split `n` items into `k` contiguous, balanced slices.
fn partition(n: usize, k: usize) -> Vec<(usize, usize)> {
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut lo = 0;
    for s in 0..k {
        let len = base + usize::from(s < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

#[inline]
fn write_quad(mem: &mut [u8], quad_index: usize, q: [f32; 4]) {
    let off = quad_index * 16;
    for (k, v) in q.iter().enumerate() {
        mem[off + 4 * k..off + 4 * k + 4].copy_from_slice(&v.to_le_bytes());
    }
}

#[inline]
fn write_dquad(mem: &mut [u8], quad_index: usize, q: [f64; 2]) {
    let off = quad_index * 16;
    mem[off..off + 8].copy_from_slice(&q[0].to_le_bytes());
    mem[off + 8..off + 16].copy_from_slice(&q[1].to_le_bytes());
}

#[inline]
fn read_dquad(mem: &[u8], quad_index: usize) -> [f64; 2] {
    let off = quad_index * 16;
    let lane = |o: usize| {
        f64::from_le_bytes([
            mem[o],
            mem[o + 1],
            mem[o + 2],
            mem[o + 3],
            mem[o + 4],
            mem[o + 5],
            mem[o + 6],
            mem[o + 7],
        ])
    };
    [lane(off), lane(off + 8)]
}

#[inline]
fn read_quad(mem: &[u8], quad_index: usize) -> [f32; 4] {
    let off = quad_index * 16;
    let lane = |o: usize| f32::from_le_bytes([mem[o], mem[o + 1], mem[o + 2], mem[o + 3]]);
    [lane(off), lane(off + 4), lane(off + 8), lane(off + 12)]
}

/// Each SPE retires up to a 4-wide single-precision FMA per cycle.
const SPE_FLOPS_PER_CYCLE: f64 = 8.0;

/// A [`CellBeDevice`] bound to one [`CellRunConfig`], so each paper
/// configuration (1 SPE, 8 SPEs, respawn vs launch-once, SIMD stage) appears
/// as a distinct device behind [`md_core::device::MdDevice`].
pub struct CellMd {
    pub device: CellBeDevice,
    pub run: CellRunConfig,
}

impl CellMd {
    pub fn new(device: CellBeDevice, run: CellRunConfig) -> Self {
        Self { device, run }
    }

    /// The paper's blade in the given run configuration.
    pub fn paper_blade(run: CellRunConfig) -> Self {
        Self::new(CellBeDevice::paper_blade(), run)
    }
}

impl md_core::device::MdDevice for CellMd {
    fn label(&self) -> String {
        format!("cell-{}spe", self.run.n_spes)
    }

    fn peak_ops_per_second(&self) -> f64 {
        self.device.config.clock_hz * SPE_FLOPS_PER_CYCLE * self.run.n_spes as f64
    }

    #[cfg(feature = "fault-inject")]
    fn resalt(&mut self, salt: u64) {
        self.device.fault_plan = self.device.fault_plan.map(|p| p.with_salt(salt));
    }

    fn run(
        &mut self,
        sim: &SimConfig,
        mut opts: md_core::device::RunOptions<'_>,
    ) -> Result<md_core::device::DeviceRun, md_core::device::DeviceError> {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = opts.fault_plan {
            self.device.fault_plan = Some(plan);
        }
        let (mut sys, start_step): (ParticleSystem<f32>, u64) = match opts.start {
            Some(cp) => (cp.restore(), cp.step),
            None => (init::initialize(sim), 0),
        };
        // Flops and DMA traffic are reported through the counter layer, so
        // observe with a local monitor when the caller didn't pass one
        // (observation is free: the counted run is bitwise-identical).
        let mut local = sim_perf::PerfMonitor::new();
        let perf = match opts.perf.take() {
            Some(p) => p,
            None => &mut local,
        };
        let r = self
            .device
            .run_md_impl(
                &mut sys,
                sim,
                opts.steps,
                self.run,
                None,
                Some(perf),
                opts.host_parallelism,
            )
            .map_err(|e| md_core::device::DeviceError::Failed(e.to_string()))?;
        let clk = self.device.config.clock_hz;
        let flops = md_core::device::counter_total(perf, "cell.flops.simd")
            + md_core::device::counter_total(perf, "cell.flops.scalar");
        let bytes = md_core::device::counter_total(perf, "cell.dma.bytes_in")
            + md_core::device::counter_total(perf, "cell.dma.bytes_out");
        let fraction = |cycles: f64| {
            if r.sim_seconds == 0.0 {
                0.0
            } else {
                (cycles / clk) / r.sim_seconds
            }
        };
        let run = md_core::device::DeviceRun {
            sim_seconds: r.sim_seconds,
            energies: r.energies,
            checkpoint: md_core::checkpoint::SystemCheckpoint::capture(
                &sys,
                start_step + opts.steps as u64,
            ),
            attribution: vec![
                ("compute", r.breakdown.compute / clk),
                ("dma_wait", r.breakdown.dma / clk),
                ("mailbox", r.breakdown.mailbox / clk),
                ("spe_spawn", r.breakdown.spawn / clk),
                ("ppe_serial", r.breakdown.ppe / clk),
            ],
            derived: vec![
                ("dma_fraction", fraction(r.breakdown.dma)),
                ("launch_fraction", fraction(r.breakdown.spawn)),
            ],
            ops: flops,
            bytes_moved: bytes,
            #[cfg(feature = "fault-inject")]
            faults: r.faults,
            #[cfg(not(feature = "fault-inject"))]
            faults: md_core::device::FaultStats::default(),
        };
        if let Some(led) = opts.ledger.take() {
            let label = md_core::device::MdDevice::label(self);
            md_core::device::ledger_record_run(led, &label, &run, Some(perf));
        }
        Ok(run)
    }
}

/// The PPE-only baseline (Table 1's 26x-slower row) as a device: the scalar
/// kernel on the PPE with its CPI penalty, no SPEs, no DMA.
pub struct CellPpeMd {
    pub device: CellBeDevice,
}

impl CellPpeMd {
    pub fn paper_blade() -> Self {
        Self {
            device: CellBeDevice::paper_blade(),
        }
    }
}

impl md_core::device::MdDevice for CellPpeMd {
    fn label(&self) -> String {
        "cell-ppe".to_string()
    }

    /// The PPE issues one scalar flop per cycle in this model.
    fn peak_ops_per_second(&self) -> f64 {
        self.device.config.clock_hz
    }

    fn run(
        &mut self,
        sim: &SimConfig,
        mut opts: md_core::device::RunOptions<'_>,
    ) -> Result<md_core::device::DeviceRun, md_core::device::DeviceError> {
        let (mut sys, start_step): (ParticleSystem<f32>, u64) = match opts.start {
            Some(cp) => (cp.restore(), cp.step),
            None => (init::initialize(sim), 0),
        };
        let r = self.device.run_md_ppe_only_impl(&mut sys, sim, opts.steps);
        let clk = self.device.config.clock_hz;
        let ops = r.kernel_stats.pairs_tested as f64 * FLOPS_PER_PAIR
            + r.kernel_stats.interactions as f64 * FLOPS_PER_INTERACTION;
        let run = md_core::device::DeviceRun {
            sim_seconds: r.sim_seconds,
            energies: r.energies,
            checkpoint: md_core::checkpoint::SystemCheckpoint::capture(
                &sys,
                start_step + opts.steps as u64,
            ),
            attribution: vec![
                ("compute", r.breakdown.compute / clk),
                ("dma_wait", r.breakdown.dma / clk),
                ("mailbox", r.breakdown.mailbox / clk),
                ("spe_spawn", r.breakdown.spawn / clk),
                ("ppe_serial", r.breakdown.ppe / clk),
            ],
            derived: Vec::new(),
            ops,
            bytes_moved: 0.0,
            faults: md_core::device::FaultStats::default(),
        };
        if let Some(led) = opts.ledger.take() {
            let label = md_core::device::MdDevice::label(self);
            md_core::device::ledger_record_run(led, &label, &run, opts.perf.as_deref());
        }
        Ok(run)
    }
}

/// The Figure 5 measurement as a device: one acceleration-function
/// invocation on a single SPE at a fixed optimization stage. Only supports
/// `steps == 0` from a fresh lattice — it times the function, not a
/// trajectory.
pub struct CellAccelProbe {
    pub device: CellBeDevice,
    pub variant: SpeKernelVariant,
}

impl CellAccelProbe {
    pub fn paper_blade(variant: SpeKernelVariant) -> Self {
        Self {
            device: CellBeDevice::paper_blade(),
            variant,
        }
    }
}

impl md_core::device::MdDevice for CellAccelProbe {
    fn label(&self) -> String {
        format!("cell-1spe-{}", self.variant.label().replace(' ', "-"))
    }

    fn peak_ops_per_second(&self) -> f64 {
        self.device.config.clock_hz * SPE_FLOPS_PER_CYCLE
    }

    fn run(
        &mut self,
        sim: &SimConfig,
        mut opts: md_core::device::RunOptions<'_>,
    ) -> Result<md_core::device::DeviceRun, md_core::device::DeviceError> {
        if opts.start.is_some() || opts.steps != 0 {
            return Err(md_core::device::DeviceError::Unsupported(
                "the single-SPE probe times one force evaluation from a fresh lattice \
                 (steps must be 0, no checkpoint)"
                    .to_string(),
            ));
        }
        let t = self
            .device
            .time_single_spe_accel(sim, self.variant)
            .map_err(|e| md_core::device::DeviceError::Failed(e.to_string()))?;
        let sys: ParticleSystem<f32> = init::initialize(sim);
        let run = md_core::device::DeviceRun {
            sim_seconds: t,
            energies: EnergyReport::measure(&sys, 0.0),
            checkpoint: md_core::checkpoint::SystemCheckpoint::capture(&sys, 0),
            attribution: vec![("force_eval", t)],
            derived: Vec::new(),
            ops: 0.0,
            bytes_moved: 0.0,
            faults: md_core::device::FaultStats::default(),
        };
        if let Some(led) = opts.ledger.take() {
            let label = md_core::device::MdDevice::label(self);
            md_core::device::ledger_record_run(led, &label, &run, opts.perf.as_deref());
        }
        Ok(run)
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use md_core::device::HostParallelism;
    use md_core::forces::{AllPairsFullKernel, ForceKernel};

    fn workload(n: usize) -> SimConfig {
        SimConfig::reduced_lj(n)
    }

    /// Test driver for the resident SPE-offload path from a fresh lattice
    /// (the production entry point is `MdDevice::run` on [`CellMd`]).
    fn run_md(
        device: &CellBeDevice,
        sim: &SimConfig,
        steps: usize,
        run: CellRunConfig,
    ) -> Result<CellRun, CellError> {
        let mut sys: ParticleSystem<f32> = init::initialize(sim);
        device.run_md_impl(
            &mut sys,
            sim,
            steps,
            run,
            None,
            None,
            HostParallelism::Serial,
        )
    }

    /// Like [`run_md`] but continuing from caller-owned state.
    fn run_md_from(
        device: &CellBeDevice,
        sys: &mut ParticleSystem<f32>,
        sim: &SimConfig,
        steps: usize,
        run: CellRunConfig,
    ) -> Result<CellRun, CellError> {
        device.run_md_impl(sys, sim, steps, run, None, None, HostParallelism::Serial)
    }

    /// [`run_md`] with performance counters attached.
    fn run_md_perf(
        device: &CellBeDevice,
        sim: &SimConfig,
        steps: usize,
        run: CellRunConfig,
        perf: &mut sim_perf::PerfMonitor,
    ) -> Result<CellRun, CellError> {
        let mut sys: ParticleSystem<f32> = init::initialize(sim);
        device.run_md_impl(
            &mut sys,
            sim,
            steps,
            run,
            None,
            Some(perf),
            HostParallelism::Serial,
        )
    }

    #[test]
    fn partition_is_exact_and_balanced() {
        for (n, k) in [(2048usize, 8usize), (10, 3), (7, 7), (5, 1)] {
            let slices = partition(n, k);
            assert_eq!(slices.len(), k);
            assert_eq!(slices[0].0, 0);
            assert_eq!(slices.last().unwrap().1, n);
            for w in slices.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            let sizes: Vec<usize> = slices.iter().map(|(a, b)| b - a).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {sizes:?}");
        }
    }

    #[test]
    fn physics_matches_f32_reference() {
        let sim = workload(256);
        let device = CellBeDevice::paper_blade();
        let run =
            run_md(&device, &sim, 3, CellRunConfig::best()).expect("256 atoms fit the local store");

        // Reference: same workload, f32, untimed.
        let mut sys: ParticleSystem<f32> = init::initialize(&sim);
        let sub = sim.substrate::<f32>();
        let vv = VelocityVerlet::new(sim.dt as f32);
        let mut kernel = AllPairsFullKernel;
        let mut pe = kernel.compute(&mut sys, &sub);
        for _ in 0..3 {
            pe = vv.step(&mut sys, &mut kernel, &sub);
        }
        let expect = EnergyReport::measure(&sys, pe as f64);
        assert!(
            (run.energies.total - expect.total).abs() < 1e-3 * expect.total.abs(),
            "Cell {} vs reference {}",
            run.energies.total,
            expect.total
        );
    }

    #[test]
    fn all_variants_produce_same_physics() {
        let sim = workload(108);
        let device = CellBeDevice::paper_blade();
        let mut totals = Vec::new();
        for variant in SpeKernelVariant::ALL {
            let run = run_md(
                &device,
                &sim,
                2,
                CellRunConfig {
                    n_spes: 4,
                    policy: SpawnPolicy::LaunchOnce,
                    variant,
                },
            )
            .unwrap();
            totals.push(run.energies.total);
        }
        for t in &totals {
            assert!(
                (t - totals[0]).abs() < 2e-3 * totals[0].abs(),
                "variants diverge: {totals:?}"
            );
        }
    }

    #[test]
    fn figure5_ladder_monotonic_on_device() {
        let sim = workload(500);
        let device = CellBeDevice::paper_blade();
        let mut prev = f64::INFINITY;
        for variant in SpeKernelVariant::ALL {
            let t = device.time_single_spe_accel(&sim, variant).unwrap();
            assert!(t < prev, "{variant:?}: {t} !< {prev}");
            prev = t;
        }
    }

    #[test]
    fn figure6_launch_once_amortizes_spawn() {
        let sim = workload(2048);
        let device = CellBeDevice::paper_blade();
        let respawn = run_md(
            &device,
            &sim,
            10,
            CellRunConfig {
                n_spes: 8,
                policy: SpawnPolicy::RespawnEveryStep,
                variant: SpeKernelVariant::SimdAcceleration,
            },
        )
        .unwrap();
        let once = run_md(
            &device,
            &sim,
            10,
            CellRunConfig {
                n_spes: 8,
                policy: SpawnPolicy::LaunchOnce,
                variant: SpeKernelVariant::SimdAcceleration,
            },
        )
        .unwrap();
        assert!(once.sim_seconds < respawn.sim_seconds);
        assert!(
            respawn.launch_fraction() > 3.0 * once.launch_fraction(),
            "respawn {:.3} vs once {:.3}",
            respawn.launch_fraction(),
            once.launch_fraction()
        );
        // Same physics either way.
        assert!(
            (once.energies.total - respawn.energies.total).abs() < 1e-6 * once.energies.total.abs()
        );
    }

    #[test]
    fn eight_spes_beat_one_spe_when_launch_amortized() {
        let sim = workload(2048);
        let device = CellBeDevice::paper_blade();
        let one = run_md(&device, &sim, 10, CellRunConfig::single_spe()).unwrap();
        let eight = run_md(&device, &sim, 10, CellRunConfig::best()).unwrap();
        let speedup = one.sim_seconds / eight.sim_seconds;
        assert!(
            (3.5..7.0).contains(&speedup),
            "paper reports ~4.5x; got {speedup:.2}"
        );
    }

    #[test]
    fn ppe_only_much_slower_than_spes() {
        // The paper's full 26x shows at 2048 atoms (checked in the Table 1
        // integration test); at 1024 the overheads are amortized enough to
        // assert a substantial gap cheaply.
        let sim = workload(1024);
        let device = CellBeDevice::paper_blade();
        let eight = run_md(&device, &sim, 6, CellRunConfig::best()).unwrap();
        let ppe = device.run_md_ppe_only(&sim, 6);
        let ratio = ppe.sim_seconds / eight.sim_seconds;
        assert!(ratio > 5.0, "PPE-only should be far slower: {ratio:.1}");
        assert!(
            (ppe.energies.total - eight.energies.total).abs() < 1e-3 * eight.energies.total.abs()
        );
    }

    #[test]
    fn local_store_overflow_detected() {
        // 16384 quads fill 256 KB; position + acceleration arrays for 10000
        // atoms need 2 * 160 KB > 256 KB.
        let sim = workload(10_000);
        let device = CellBeDevice::paper_blade();
        let err = run_md(&device, &sim, 1, CellRunConfig::best());
        assert!(err.is_err(), "10k atoms cannot fit the local store layout");
    }

    #[test]
    fn deterministic() {
        let sim = workload(256);
        let device = CellBeDevice::paper_blade();
        let a = run_md(&device, &sim, 3, CellRunConfig::best()).unwrap();
        let b = run_md(&device, &sim, 3, CellRunConfig::best()).unwrap();
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.energies.total, b.energies.total);
    }

    #[test]
    fn perf_counters_are_free_and_populated() {
        let sim = workload(256);
        let device = CellBeDevice::paper_blade();
        let plain = run_md(&device, &sim, 3, CellRunConfig::best()).unwrap();
        let mut perf = sim_perf::PerfMonitor::new();
        let counted = run_md_perf(&device, &sim, 3, CellRunConfig::best(), &mut perf).unwrap();

        // Observability is free: bitwise-identical outcome.
        assert_eq!(plain.sim_seconds, counted.sim_seconds);
        assert_eq!(plain.energies.total, counted.energies.total);

        // 4 evaluations (1 priming + 3 steps), each SPE gets all 256
        // positions in (256 quads) and puts its 32-atom slice back.
        let spe0 = perf.find("cell.spe0.dma.bytes").expect("registered");
        assert_eq!(spe0.value(), 4.0 * (256.0 + 32.0) * 16.0);
        assert_eq!(spe0.samples().len(), 4);
        let bytes_in = perf.find("cell.dma.bytes_in").expect("registered");
        assert_eq!(bytes_in.value(), 4.0 * 8.0 * 256.0 * 16.0);
        // Launch-once: 8 completion round-trips per eval + 8 "more data"
        // signals on each of the 3 non-priming evals.
        let mbox = perf.find("cell.mailbox.round_trips").expect("registered");
        assert_eq!(mbox.value(), 4.0 * 8.0 + 3.0 * 8.0);
        // Fully SIMDized variant: all kernel flops through SIMD lanes.
        let simd = perf.find("cell.flops.simd").expect("registered");
        let scalar = perf.find("cell.flops.scalar").expect("registered");
        assert!(simd.value() > 0.0);
        assert_eq!(scalar.value(), 0.0);
        let pairs = perf.find("cell.kernel.pairs_tested").expect("registered");
        assert_eq!(pairs.value(), counted.kernel_stats.pairs_tested as f64);
        let stall = perf.find("cell.dma.stall_cycles").expect("registered");
        assert_eq!(stall.value(), counted.breakdown.dma);
    }

    #[test]
    fn scalar_variant_attributes_flops_to_scalar_pipe() {
        let sim = workload(108);
        let device = CellBeDevice::paper_blade();
        let mut perf = sim_perf::PerfMonitor::new();
        run_md_perf(
            &device,
            &sim,
            1,
            CellRunConfig {
                n_spes: 2,
                policy: SpawnPolicy::LaunchOnce,
                variant: SpeKernelVariant::Original,
            },
            &mut perf,
        )
        .unwrap();
        let simd = perf.find("cell.flops.simd").expect("registered");
        let scalar = perf.find("cell.flops.scalar").expect("registered");
        assert_eq!(simd.value(), 0.0);
        assert!(scalar.value() > 0.0);
    }

    #[test]
    fn traced_run_produces_consistent_timeline() {
        let sim = workload(256);
        let device = CellBeDevice::paper_blade();
        let mut tracer = mdea_trace::Tracer::new();
        let traced = device
            .run_md_traced(&sim, 3, CellRunConfig::best(), &mut tracer)
            .unwrap();
        let plain = run_md(&device, &sim, 3, CellRunConfig::best()).unwrap();

        // Tracing must not perturb the simulation.
        assert_eq!(traced.sim_seconds, plain.sim_seconds);
        assert_eq!(traced.energies.total, plain.energies.total);

        // Timeline sanity: spans exist on the PPE and every SPE track, the
        // timeline end matches the reported runtime closely, and the JSON
        // export is well formed.
        assert!(!tracer.is_empty());
        assert!(
            tracer.track_busy(mdea_trace::TraceTrack(0)) > 0.0,
            "PPE busy"
        );
        for s in 0..8u32 {
            assert!(
                tracer.track_busy(mdea_trace::TraceTrack(1 + s)) > 0.0,
                "SPE {s} has spans"
            );
        }
        let end = tracer.end_time();
        assert!(
            (end - traced.sim_seconds).abs() < 0.02 * traced.sim_seconds,
            "timeline end {end} vs runtime {}",
            traced.sim_seconds
        );
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("accel kernel"));
        assert!(json.contains("spawn SPE 7 thread"));
    }

    #[test]
    fn tiled_port_matches_resident_port() {
        let sim = workload(512);
        let device = CellBeDevice::paper_blade();
        let resident = run_md(&device, &sim, 3, CellRunConfig::best()).unwrap();
        let tiled = device
            .run_md_tiled(&sim, 3, CellRunConfig::best(), 128)
            .unwrap();
        assert!(
            (tiled.energies.total - resident.energies.total).abs()
                < 1e-5 * resident.energies.total.abs(),
            "tiled {} vs resident {}",
            tiled.energies.total,
            resident.energies.total
        );
        assert_eq!(
            tiled.kernel_stats.interactions,
            resident.kernel_stats.interactions
        );
        // Double-buffered streaming costs a little more than resident, but
        // not wildly (DMA overlaps compute).
        let overhead = tiled.sim_seconds / resident.sim_seconds;
        assert!(
            (0.95..1.5).contains(&overhead),
            "tiled overhead {overhead:.2}x"
        );
    }

    #[test]
    fn tiled_port_handles_systems_beyond_the_local_store() {
        // 10000 atoms: the resident port overflows (checked elsewhere); the
        // tiled port runs and produces physical results.
        let sim = workload(10_000);
        let device = CellBeDevice::paper_blade();
        let run = device
            .run_md_tiled(&sim, 0, CellRunConfig::best(), 1024)
            .expect("streaming port has no N limit");
        assert!(run.energies.potential < 0.0, "cohesive liquid");
        assert!(run.sim_seconds > 0.0);
    }

    #[test]
    fn tile_size_does_not_change_physics() {
        let sim = workload(256);
        let device = CellBeDevice::paper_blade();
        let runs: Vec<f64> = [32usize, 100, 256, 511]
            .iter()
            .map(|&t| {
                device
                    .run_md_tiled(&sim, 2, CellRunConfig::best(), t)
                    .unwrap()
                    .energies
                    .total
            })
            .collect();
        for r in &runs {
            assert!(
                (r - runs[0]).abs() < 1e-6 * runs[0].abs(),
                "tile size changed the trajectory: {runs:?}"
            );
        }
    }

    #[test]
    fn double_precision_matches_f64_reference() {
        let sim = workload(256);
        let device = CellBeDevice::paper_blade();
        let run = device
            .run_md_double(&sim, 3, CellRunConfig::best())
            .expect("fits local store");

        let mut sys: ParticleSystem<f64> = init::initialize(&sim);
        let sub = sim.substrate::<f64>();
        let vv = VelocityVerlet::new(sim.dt);
        let mut kernel = AllPairsFullKernel;
        let mut pe = kernel.compute(&mut sys, &sub);
        for _ in 0..3 {
            pe = vv.step(&mut sys, &mut kernel, &sub);
        }
        let expect = EnergyReport::measure(&sys, pe);
        assert!(
            (run.energies.total - expect.total).abs() < 1e-9 * expect.total.abs(),
            "DP Cell {} vs f64 reference {}",
            run.energies.total,
            expect.total
        );
    }

    #[test]
    fn double_precision_pays_the_dp_penalty() {
        let sim = workload(512);
        let device = CellBeDevice::paper_blade();
        let sp = run_md(&device, &sim, 4, CellRunConfig::best()).unwrap();
        let dp = device
            .run_md_double(&sim, 4, CellRunConfig::best())
            .unwrap();
        let ratio = dp.breakdown.compute / sp.breakdown.compute;
        assert!(
            (3.0..8.0).contains(&ratio),
            "DP compute should be several times SP: {ratio:.2}x"
        );
    }

    #[test]
    fn segmented_run_matches_unsegmented_run_bitwise() {
        // run_md_from in two 5-step segments must reproduce the 10-step run
        // exactly: this is the property the supervisor's checkpoint/restart
        // relies on.
        let sim = workload(256);
        let device = CellBeDevice::paper_blade();
        let mut whole: ParticleSystem<f32> = init::initialize(&sim);
        run_md_from(&device, &mut whole, &sim, 10, CellRunConfig::best()).unwrap();

        let mut segmented: ParticleSystem<f32> = init::initialize(&sim);
        run_md_from(&device, &mut segmented, &sim, 5, CellRunConfig::best()).unwrap();
        run_md_from(&device, &mut segmented, &sim, 5, CellRunConfig::best()).unwrap();

        assert_eq!(whole.positions, segmented.positions);
        assert_eq!(whole.velocities, segmented.velocities);
        assert_eq!(whole.accelerations, segmented.accelerations);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_faults_leave_physics_untouched_and_slow_the_run() {
        let sim = workload(256);
        let clean_device = CellBeDevice::paper_blade();
        let mut clean_sys: ParticleSystem<f32> = init::initialize(&sim);
        let clean = run_md_from(
            &clean_device,
            &mut clean_sys,
            &sim,
            5,
            CellRunConfig::best(),
        )
        .unwrap();

        let faulty_device =
            CellBeDevice::paper_blade().with_fault_plan(sim_fault::FaultPlan::new(7, 0.1));
        let mut faulty_sys: ParticleSystem<f32> = init::initialize(&sim);
        let faulty = run_md_from(
            &faulty_device,
            &mut faulty_sys,
            &sim,
            5,
            CellRunConfig::best(),
        )
        .unwrap();

        assert_eq!(clean_sys.positions, faulty_sys.positions);
        assert_eq!(clean_sys.velocities, faulty_sys.velocities);
        assert_eq!(clean.energies.total, faulty.energies.total);
        assert!(faulty.faults.any(), "rate 0.2 over 5 steps must fire");
        assert!(
            faulty.sim_seconds > clean.sim_seconds,
            "recovery must cost simulated time: {} !> {}",
            faulty.sim_seconds,
            clean.sim_seconds
        );
        assert!(faulty.faults.extra_seconds > 0.0);
        // SPEs run concurrently, so recovery on a non-critical-path SPE is
        // absorbed: the wall slowdown is at most the total charged time.
        assert!(
            faulty.sim_seconds - clean.sim_seconds <= faulty.faults.extra_seconds + 1e-12,
            "slowdown {} cannot exceed charged recovery {}",
            faulty.sim_seconds - clean.sim_seconds,
            faulty.faults.extra_seconds
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn always_faulting_plan_surfaces_typed_exhaustion() {
        let sim = workload(256);
        let device = CellBeDevice::paper_blade().with_fault_plan(sim_fault::FaultPlan::new(0, 1.0));
        let err = run_md(&device, &sim, 2, CellRunConfig::best());
        assert!(
            matches!(err, Err(CellError::FaultExhausted { .. })),
            "rate-1.0 plan must exhaust: {err:?}"
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_schedule_is_reproducible_across_runs() {
        let sim = workload(256);
        let mk =
            || CellBeDevice::paper_blade().with_fault_plan(sim_fault::FaultPlan::new(42, 0.15));
        let a = run_md(&mk(), &sim, 4, CellRunConfig::best()).unwrap();
        let b = run_md(&mk(), &sim, 4, CellRunConfig::best()).unwrap();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_instants_appear_on_the_timeline() {
        let sim = workload(256);
        let device =
            CellBeDevice::paper_blade().with_fault_plan(sim_fault::FaultPlan::new(11, 0.3));
        let mut tracer = mdea_trace::Tracer::new();
        let run = device
            .run_md_traced(&sim, 4, CellRunConfig::best(), &mut tracer)
            .unwrap();
        assert!(run.faults.any());
        let json = tracer.to_chrome_json();
        assert!(json.contains("fault:"), "fault instants in the trace");
    }

    #[test]
    fn double_precision_halves_the_local_store_capacity() {
        // 6000 atoms fit in f32 (2 * 96 KB) but not in f64 (2 * 192 KB).
        let sim = workload(6000);
        let device = CellBeDevice::paper_blade();
        assert!(run_md(&device, &sim, 0, CellRunConfig::best()).is_ok());
        assert!(device
            .run_md_double(&sim, 0, CellRunConfig::best())
            .is_err());
    }
}
