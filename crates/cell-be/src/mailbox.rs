//! SPE mailboxes: small blocking channels between the PPE and an SPE.
//!
//! The paper's launch-once optimization (Figure 6) hinges on these: instead
//! of respawning SPE threads each time step, the PPE "signal[s] them using
//! mailboxes when there is more data to process", amortizing the thread
//! launch across all steps. A mailbox carries 32-bit values through a
//! 4-entry hardware FIFO; writes to a full box and reads from an empty box
//! block.
//!
//! The simulator is sequential, so "blocking" surfaces as a checked error —
//! a protocol that would deadlock on hardware panics here.

use std::collections::VecDeque;

/// Hardware FIFO depth of the SPU inbound mailbox.
pub const MAILBOX_DEPTH: usize = 4;

/// A 32-bit, 4-deep FIFO mailbox.
#[derive(Clone, Debug, Default)]
pub struct Mailbox {
    queue: VecDeque<u32>,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.queue.len() >= MAILBOX_DEPTH
    }

    /// Non-blocking write; `false` if the FIFO is full.
    pub fn try_write(&mut self, value: u32) -> bool {
        if self.is_full() {
            return false;
        }
        self.queue.push_back(value);
        true
    }

    /// Blocking write. In the sequential simulator a full box means the
    /// protocol is wrong (the reader can never drain it concurrently), so
    /// this panics instead of spinning forever.
    pub fn write(&mut self, value: u32) {
        assert!(
            self.try_write(value),
            "mailbox write to a full FIFO would deadlock the sequential simulation"
        );
    }

    /// Non-blocking read.
    pub fn try_read(&mut self) -> Option<u32> {
        self.queue.pop_front()
    }

    /// Blocking read; panics on an empty box for the same reason as `write`.
    pub fn read(&mut self) -> u32 {
        self.try_read()
            // sim-vet: allow(panic-discipline): a blocked mailbox is a protocol bug, not a data error — the deadlock must fail loudly
            .expect("mailbox read from an empty FIFO would deadlock the sequential simulation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut m = Mailbox::new();
        m.write(1);
        m.write(2);
        m.write(3);
        assert_eq!(m.read(), 1);
        assert_eq!(m.read(), 2);
        assert_eq!(m.read(), 3);
        assert!(m.is_empty());
    }

    #[test]
    fn depth_limit() {
        let mut m = Mailbox::new();
        for v in 0..4 {
            assert!(m.try_write(v));
        }
        assert!(m.is_full());
        assert!(!m.try_write(99), "fifth write refused");
        assert_eq!(m.len(), 4);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn blocking_write_to_full_panics() {
        let mut m = Mailbox::new();
        for v in 0..5 {
            m.write(v);
        }
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn blocking_read_from_empty_panics() {
        Mailbox::new().read();
    }

    #[test]
    fn try_read_empty_is_none() {
        assert_eq!(Mailbox::new().try_read(), None);
    }
}
