//! The SPE local store: 256 KB of directly addressed, fixed-latency memory.
//!
//! An SPE can only load/store from its local store; everything else arrives
//! by DMA. The store is modeled as real bytes — DMA writes into it and the
//! kernel reads out of it — with a bump allocator and the 16-byte (quadword)
//! alignment rules of the hardware.
//!
//! The store is passive memory: every access cost is charged by whoever
//! drives it (the DMA engine for byte traffic, the kernel's cycle model for
//! quadword loads/stores), so the mutators here legitimately return no cost.
// sim-vet: allow-file(cost-conservation): costs are charged by the DMA engine and the kernel cost model

use crate::error::LsError;

/// A byte-addressed local store with quadword-aligned allocation.
#[derive(Clone, Debug)]
pub struct LocalStore {
    bytes: Vec<u8>,
    alloc_top: usize,
}

/// Handle to a region allocated inside a local store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsRegion {
    pub offset: usize,
    pub len: usize,
}

impl LocalStore {
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity.is_multiple_of(16),
            "local store size must be quadword aligned"
        );
        Self {
            bytes: vec![0; capacity],
            alloc_top: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    pub fn bytes_allocated(&self) -> usize {
        self.alloc_top
    }

    pub fn bytes_free(&self) -> usize {
        self.capacity() - self.alloc_top
    }

    /// Allocate `len` bytes, 16-byte aligned. Returns `None` if the store is
    /// exhausted — the hard 256 KB wall the paper's port must design around.
    pub fn alloc(&mut self, len: usize) -> Option<LsRegion> {
        let offset = (self.alloc_top + 15) & !15;
        if offset + len > self.capacity() {
            return None;
        }
        self.alloc_top = offset + len;
        Some(LsRegion { offset, len })
    }

    /// Allocate space for `n` quadwords (`[f32; 4]` each).
    pub fn alloc_quads(&mut self, n: usize) -> Option<LsRegion> {
        self.alloc(n * 16)
    }

    /// Free everything (between kernel launches).
    pub fn reset(&mut self) {
        self.alloc_top = 0;
    }

    fn check_access(&self, offset: usize, len: usize) -> Result<(), LsError> {
        if offset + len > self.capacity() {
            return Err(LsError::Overrun {
                offset,
                len,
                capacity: self.capacity(),
            });
        }
        Ok(())
    }

    /// Raw write (used by the DMA engine). An out-of-bounds access is a
    /// programming error on real hardware too (the address wraps, silently
    /// corrupting); the model reports it as a typed error instead.
    pub fn write_bytes(&mut self, offset: usize, data: &[u8]) -> Result<(), LsError> {
        self.check_access(offset, data.len())?;
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    pub fn read_bytes(&self, offset: usize, len: usize) -> Result<&[u8], LsError> {
        self.check_access(offset, len)?;
        Ok(&self.bytes[offset..offset + len])
    }

    /// Load quadword `i` of a region as `[f32; 4]` (the SPE `lqd` view).
    #[inline]
    pub fn load_quad(&self, region: LsRegion, i: usize) -> [f32; 4] {
        let off = region.offset + i * 16;
        debug_assert!(
            off + 16 <= region.offset + region.len,
            "quad read past region"
        );
        let b = &self.bytes[off..off + 16];
        [
            f32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            f32::from_le_bytes([b[4], b[5], b[6], b[7]]),
            f32::from_le_bytes([b[8], b[9], b[10], b[11]]),
            f32::from_le_bytes([b[12], b[13], b[14], b[15]]),
        ]
    }

    /// Store `[f32; 4]` into quadword `i` of a region (`stqd`).
    #[inline]
    pub fn store_quad(&mut self, region: LsRegion, i: usize, q: [f32; 4]) {
        let off = region.offset + i * 16;
        debug_assert!(
            off + 16 <= region.offset + region.len,
            "quad write past region"
        );
        self.bytes[off..off + 4].copy_from_slice(&q[0].to_le_bytes());
        self.bytes[off + 4..off + 8].copy_from_slice(&q[1].to_le_bytes());
        self.bytes[off + 8..off + 12].copy_from_slice(&q[2].to_le_bytes());
        self.bytes[off + 12..off + 16].copy_from_slice(&q[3].to_le_bytes());
    }

    /// Load quadword `i` as two doubles — the SPE's double-precision view of
    /// a register (2 × f64 per 128-bit quadword).
    #[inline]
    pub fn load_dquad(&self, region: LsRegion, i: usize) -> [f64; 2] {
        let off = region.offset + i * 16;
        debug_assert!(
            off + 16 <= region.offset + region.len,
            "dquad read past region"
        );
        let b = &self.bytes[off..off + 16];
        [
            f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]),
            f64::from_le_bytes([b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]]),
        ]
    }

    /// Store two doubles into quadword `i`.
    #[inline]
    pub fn store_dquad(&mut self, region: LsRegion, i: usize, q: [f64; 2]) {
        let off = region.offset + i * 16;
        debug_assert!(
            off + 16 <= region.offset + region.len,
            "dquad write past region"
        );
        self.bytes[off..off + 8].copy_from_slice(&q[0].to_le_bytes());
        self.bytes[off + 8..off + 16].copy_from_slice(&q[1].to_le_bytes());
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_capacity() {
        let mut ls = LocalStore::new(256);
        let a = ls.alloc(20).unwrap();
        assert_eq!(a.offset, 0);
        let b = ls.alloc(16).unwrap();
        assert_eq!(b.offset % 16, 0, "quadword aligned");
        assert_eq!(b.offset, 32);
        assert!(ls.alloc(1024).is_none(), "over capacity");
    }

    #[test]
    fn exhaustion_boundary() {
        let mut ls = LocalStore::new(64);
        assert!(ls.alloc_quads(4).is_some()); // exactly full
        assert!(ls.alloc(1).is_none());
        ls.reset();
        assert!(ls.alloc(64).is_some());
    }

    #[test]
    fn quad_roundtrip() {
        let mut ls = LocalStore::new(256);
        let r = ls.alloc_quads(4).unwrap();
        ls.store_quad(r, 2, [1.0, -2.5, 3.25, 0.0]);
        assert_eq!(ls.load_quad(r, 2), [1.0, -2.5, 3.25, 0.0]);
        assert_eq!(ls.load_quad(r, 0), [0.0; 4], "untouched quads are zero");
    }

    #[test]
    fn byte_and_quad_views_agree() {
        let mut ls = LocalStore::new(64);
        let r = ls.alloc_quads(1).unwrap();
        ls.write_bytes(r.offset, &1.0f32.to_le_bytes()).unwrap();
        assert_eq!(ls.load_quad(r, 0)[0], 1.0);
    }

    #[test]
    fn out_of_bounds_access_reported() {
        let mut ls = LocalStore::new(32);
        assert_eq!(
            ls.write_bytes(24, &[0u8; 16]),
            Err(LsError::Overrun {
                offset: 24,
                len: 16,
                capacity: 32
            })
        );
        assert!(ls.read_bytes(0, 32).is_ok(), "full-store read is in bounds");
        assert!(ls.read_bytes(17, 16).is_err());
    }

    #[test]
    fn dquad_roundtrip_and_aliasing() {
        let mut ls = LocalStore::new(64);
        let r = ls.alloc_quads(2).unwrap();
        ls.store_dquad(r, 0, [1.5, -2.25]);
        ls.store_dquad(r, 1, [f64::MAX, f64::MIN_POSITIVE]);
        assert_eq!(ls.load_dquad(r, 0), [1.5, -2.25]);
        assert_eq!(ls.load_dquad(r, 1), [f64::MAX, f64::MIN_POSITIVE]);
    }

    #[test]
    fn capacity_tracking() {
        let mut ls = LocalStore::new(256 * 1024);
        assert_eq!(ls.capacity(), 262144);
        ls.alloc_quads(2048).unwrap(); // a 2048-atom position array: 32 KB
        assert_eq!(ls.bytes_allocated(), 32768);
        assert_eq!(ls.bytes_free(), 262144 - 32768);
    }
}
