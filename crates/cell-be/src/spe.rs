//! One Synergistic Processing Element: local store + mailboxes + cycle count.

use crate::config::CellConfig;
use crate::localstore::{LocalStore, LsRegion};
use crate::mailbox::Mailbox;

/// A simulated SPE. Owns its local store, its inbound/outbound mailboxes,
/// and the cycle counter that accumulates everything it executes.
#[derive(Debug)]
pub struct Spe {
    pub id: usize,
    pub local_store: LocalStore,
    /// PPE → SPE messages.
    pub inbox: Mailbox,
    /// SPE → PPE messages.
    pub outbox: Mailbox,
    cycles: f64,
    /// Whether a thread is currently loaded/running on this SPE.
    running: bool,
}

impl Spe {
    pub fn new(id: usize, config: &CellConfig) -> Self {
        Self {
            id,
            local_store: LocalStore::new(config.local_store_bytes),
            inbox: Mailbox::new(),
            outbox: Mailbox::new(),
            cycles: 0.0,
            running: false,
        }
    }

    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    pub fn charge(&mut self, cycles: f64) {
        debug_assert!(cycles >= 0.0);
        self.cycles += cycles;
    }

    pub fn reset_cycles(&mut self) {
        self.cycles = 0.0;
    }

    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Mark a thread as loaded (the PPE pays the spawn cost, not the SPE).
    pub fn start_thread(&mut self) {
        assert!(!self.running, "SPE {} already has a thread loaded", self.id);
        self.running = true;
    }

    pub fn stop_thread(&mut self) {
        assert!(self.running, "SPE {} has no thread to stop", self.id);
        self.running = false;
    }

    /// Allocate a quadword array in the local store, or report exhaustion —
    /// the hard 256 KB constraint the paper's port designs around.
    pub fn alloc_quads(&mut self, n: usize) -> Result<LsRegion, LsOverflow> {
        self.local_store.alloc_quads(n).ok_or(LsOverflow {
            requested: n * 16,
            free: self.local_store.bytes_free(),
        })
    }
}

/// The local store is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsOverflow {
    pub requested: usize,
    pub free: usize,
}

impl std::fmt::Display for LsOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SPE local store exhausted: requested {} bytes with {} free \
             (the 256 KB local store is the Cell port's hard constraint)",
            self.requested, self.free
        )
    }
}

impl std::error::Error for LsOverflow {}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut spe = Spe::new(3, &CellConfig::paper_blade());
        assert!(!spe.is_running());
        spe.start_thread();
        assert!(spe.is_running());
        spe.charge(100.0);
        spe.charge(50.0);
        assert_eq!(spe.cycles(), 150.0);
        spe.stop_thread();
        spe.reset_cycles();
        assert_eq!(spe.cycles(), 0.0);
    }

    #[test]
    #[should_panic(expected = "already has a thread")]
    fn double_start_rejected() {
        let mut spe = Spe::new(0, &CellConfig::paper_blade());
        spe.start_thread();
        spe.start_thread();
    }

    #[test]
    fn ls_overflow_reported() {
        let mut spe = Spe::new(0, &CellConfig::paper_blade());
        // 256 KB = 16384 quads. Ask for more.
        assert!(spe.alloc_quads(16000).is_ok());
        let err = spe.alloc_quads(1000).unwrap_err();
        assert!(err.requested > err.free);
        assert!(err.to_string().contains("local store exhausted"));
    }
}
