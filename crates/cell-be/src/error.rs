//! Typed errors for the Cell device model.
//!
//! The DMA engine and local store used to assert on protocol violations;
//! surfacing them as values instead keeps failures inside the cost-accounted
//! simulation (the panic-discipline invariant sim-vet enforces) and lets
//! callers distinguish "your layout is wrong" from "your transfer is wrong".

use crate::spe::LsOverflow;
use std::fmt;

/// A DMA command was malformed or out of bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaError {
    /// Transfer length is not a multiple of 16 bytes.
    UnalignedLength { len: usize },
    /// Local-store offset is not 16-byte aligned.
    UnalignedOffset { offset: usize },
    /// Transfer is larger than the local-store region backing it.
    RegionOverflow { len: usize, region_len: usize },
    /// Main-memory side of the transfer falls outside the buffer.
    MainMemoryOutOfBounds {
        offset: usize,
        len: usize,
        mem_len: usize,
    },
    /// The local-store side of the transfer overran the store.
    LocalStore(LsError),
}

impl fmt::Display for DmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmaError::UnalignedLength { len } => {
                write!(f, "DMA length {len} must be a multiple of 16 bytes")
            }
            DmaError::UnalignedOffset { offset } => {
                write!(f, "DMA local-store offset {offset} must be 16-byte aligned")
            }
            DmaError::RegionOverflow { len, region_len } => write!(
                f,
                "DMA transfer of {len} bytes exceeds its {region_len}-byte local-store region"
            ),
            DmaError::MainMemoryOutOfBounds {
                offset,
                len,
                mem_len,
            } => write!(
                f,
                "DMA main-memory access of {len} bytes at {offset} exceeds {mem_len}-byte buffer"
            ),
            DmaError::LocalStore(e) => write!(f, "DMA local-store access failed: {e}"),
        }
    }
}

impl std::error::Error for DmaError {}

impl From<LsError> for DmaError {
    fn from(e: LsError) -> Self {
        DmaError::LocalStore(e)
    }
}

/// A raw local-store access fell outside the store. On real hardware the
/// address would wrap and silently corrupt; the model reports it instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LsError {
    Overrun {
        offset: usize,
        len: usize,
        capacity: usize,
    },
}

impl fmt::Display for LsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let LsError::Overrun {
            offset,
            len,
            capacity,
        } = self;
        write!(
            f,
            "local store overrun: access of {len} bytes at {offset} exceeds {capacity} bytes"
        )
    }
}

impl std::error::Error for LsError {}

/// Any failure of a simulated Cell run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellError {
    /// The working set does not fit the 256 KB local store.
    Overflow(LsOverflow),
    /// A DMA transfer was malformed (a device-model bug, not a sizing issue).
    Dma(DmaError),
    /// An injected fault kept firing past the retry budget; the run is
    /// abandoned mid-flight and the caller (normally the harness supervisor)
    /// must restore from a checkpoint or fall back to the reference device.
    #[cfg(feature = "fault-inject")]
    FaultExhausted {
        kind: sim_fault::FaultKind,
        eval: u64,
        unit: u32,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Overflow(e) => e.fmt(f),
            CellError::Dma(e) => e.fmt(f),
            #[cfg(feature = "fault-inject")]
            CellError::FaultExhausted { kind, eval, unit } => write!(
                f,
                "injected {kind} fault exhausted its retry budget at eval {eval} on SPE {unit}"
            ),
        }
    }
}

impl std::error::Error for CellError {}

impl From<LsOverflow> for CellError {
    fn from(e: LsOverflow) -> Self {
        CellError::Overflow(e)
    }
}

impl From<DmaError> for CellError {
    fn from(e: DmaError) -> Self {
        CellError::Dma(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert!(DmaError::UnalignedLength { len: 20 }
            .to_string()
            .contains("multiple of 16"));
        assert!(DmaError::UnalignedOffset { offset: 8 }
            .to_string()
            .contains("16-byte aligned"));
        let ls = LsError::Overrun {
            offset: 240,
            len: 32,
            capacity: 256,
        };
        assert!(ls.to_string().contains("overrun"));
        assert!(DmaError::from(ls).to_string().contains("overrun"));
    }

    #[test]
    fn cell_error_wraps_both_sources() {
        let overflow = LsOverflow {
            requested: 1024,
            free: 16,
        };
        assert_eq!(CellError::from(overflow), CellError::Overflow(overflow));
        let dma = DmaError::UnalignedLength { len: 4 };
        assert_eq!(CellError::from(dma), CellError::Dma(dma));
        assert!(CellError::from(overflow).to_string().contains("exhausted"));
    }
}
