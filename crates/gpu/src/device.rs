//! The GPU device: uploads, dispatches, readbacks, and their costs.

use crate::config::GpuConfig;
use crate::shader::{Shader, ShaderConstants, ShaderOps};
use crate::texture::Texture;
use md_core::device::HostParallelism;
use md_core::parallel::map_indexed;

/// Host-parallel dispatch granularity: output texels are processed in fixed
/// batches of this many fragments. The batch decomposition depends only on
/// the output length — never on the thread count — so every batch computes
/// the same texels and retires the same ops no matter how the batches are
/// scheduled across host threads.
pub const FRAGMENT_BATCH: usize = 256;

/// Outcome of one dispatch: the output texture plus timing/ops accounting.
#[derive(Clone, Debug)]
pub struct DispatchResult {
    pub output: Texture,
    pub ops: ShaderOps,
    /// Shader execution time (pipeline-occupancy), seconds.
    pub shader_seconds: f64,
    /// Fixed driver/dispatch overhead, seconds.
    pub overhead_seconds: f64,
}

/// The simulated GPU. Tracks the one-time JIT cost and enforces the
/// compile-before-dispatch ordering of the 2006 toolchains.
pub struct GpuDevice {
    pub config: GpuConfig,
    constants: Option<ShaderConstants>,
    startup_seconds: f64,
}

impl GpuDevice {
    pub fn new(config: GpuConfig) -> Self {
        Self {
            config,
            constants: None,
            startup_seconds: 0.0,
        }
    }

    pub fn geforce_7900gtx() -> Self {
        Self::new(GpuConfig::geforce_7900gtx())
    }

    /// JIT-compile the shader with its baked-in constants. One-time cost,
    /// reported separately because Figure 7 excludes it ("it occurs only once
    /// [and] will be quickly amortized").
    pub fn compile(&mut self, constants: ShaderConstants) {
        self.constants = Some(constants);
        self.startup_seconds += self.config.jit_startup_s;
    }

    /// Accumulated excluded startup cost.
    pub fn startup_seconds(&self) -> f64 {
        self.startup_seconds
    }

    /// The JIT-baked constant block, if [`compile`] has run. The shared-eval
    /// fast path reads the same compiled constants the interpretive dispatch
    /// would, so both paths see one source of truth for the kernel parameters.
    ///
    /// [`compile`]: GpuDevice::compile
    pub(crate) fn compiled_constants(&self) -> Option<&ShaderConstants> {
        self.constants.as_ref()
    }

    /// PCIe cost of moving a texture to the GPU, seconds.
    pub fn upload_seconds(&self, texture: &Texture) -> f64 {
        self.config.transfer_latency_s
            + texture.size_bytes() as f64 / self.config.upload_bytes_per_sec
    }

    /// PCIe cost of reading a texture back, seconds.
    pub fn readback_seconds(&self, texture: &Texture) -> f64 {
        self.config.transfer_latency_s
            + texture.size_bytes() as f64 / self.config.readback_bytes_per_sec
    }

    /// Run the shader once per output texel ("we set up the GPU to execute
    /// our shader program exactly once for each location in the output
    /// array"). Inputs are immutable, the output is a fresh texture: the
    /// stream-processing input/output separation cannot be violated.
    pub fn dispatch(
        &self,
        shader: &dyn Shader,
        inputs: &[&Texture],
        out_len: usize,
    ) -> DispatchResult {
        self.dispatch_par(shader, inputs, out_len, HostParallelism::Serial)
    }

    /// [`dispatch`] with the fragment loop fanned out over host threads.
    ///
    /// Texels are grouped into fixed [`FRAGMENT_BATCH`]-sized batches; each
    /// batch runs as one lane of an order-preserving indexed map with its own
    /// [`ShaderOps`] tally, and the per-batch texels and op counts are folded
    /// serially in batch order. Shader instances cannot communicate (the
    /// stream-processing restriction), so the output texture, op totals, and
    /// hence the charged pipeline time are bitwise identical to the serial
    /// dispatch at any thread count.
    ///
    /// [`dispatch`]: GpuDevice::dispatch
    pub fn dispatch_par(
        &self,
        shader: &dyn Shader,
        inputs: &[&Texture],
        out_len: usize,
        par: HostParallelism,
    ) -> DispatchResult {
        let constants = self
            .constants
            // sim-vet: allow(panic-discipline): compile-before-dispatch is an API contract (the JIT protocol), not a runtime data failure
            .expect("shader must be JIT-compiled (GpuDevice::compile) before dispatch");
        assert!(
            inputs.len() <= self.config.max_input_textures,
            "shader binds {} input textures but the hardware supports {}",
            inputs.len(),
            self.config.max_input_textures
        );
        let n_batches = out_len.div_ceil(FRAGMENT_BATCH);
        let batches = map_indexed(par, n_batches, |b| {
            let lo = b * FRAGMENT_BATCH;
            let hi = (lo + FRAGMENT_BATCH).min(out_len);
            let mut ops = ShaderOps::default();
            let texels: Vec<[f32; 4]> = (lo..hi)
                .map(|i| shader.execute(inputs, i, &constants, &mut ops))
                .collect();
            (texels, ops)
        });
        let mut output = Texture::new(out_len);
        let mut ops = ShaderOps::default();
        let mut cursor = 0usize;
        for (texels, batch_ops) in batches {
            for texel in texels {
                output.texels_mut()[cursor] = texel;
                cursor += 1;
            }
            ops.alu += batch_ops.alu;
            ops.fetches += batch_ops.fetches;
        }
        self.finish_dispatch(output, ops)
    }

    /// Convert a completed fragment pass into a [`DispatchResult`]: retired
    /// ops become pipeline-occupancy seconds, plus the fixed per-dispatch
    /// driver overhead. Shared by the interpretive dispatch and the
    /// shared-eval replay path so both charge time through one expression.
    pub(crate) fn finish_dispatch(&self, output: Texture, ops: ShaderOps) -> DispatchResult {
        let shader_seconds = ops.total() as f64 / self.config.ops_per_second();
        DispatchResult {
            output,
            ops,
            shader_seconds,
            overhead_seconds: self.config.dispatch_overhead_s,
        }
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    struct Doubler;
    impl Shader for Doubler {
        fn execute(
            &self,
            inputs: &[&Texture],
            out_index: usize,
            _c: &ShaderConstants,
            ops: &mut ShaderOps,
        ) -> [f32; 4] {
            ops.fetches += 1;
            ops.alu += 1;
            let t = inputs[0].fetch(out_index);
            [t[0] * 2.0, t[1] * 2.0, t[2] * 2.0, t[3] * 2.0]
        }
    }

    #[test]
    fn dispatch_runs_once_per_output_texel() {
        let mut dev = GpuDevice::geforce_7900gtx();
        dev.compile(ShaderConstants::default());
        let input = Texture::from_xyz(&[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        let r = dev.dispatch(&Doubler, &[&input], 2);
        assert_eq!(r.output.fetch(1), [8.0, 10.0, 12.0, 0.0]);
        assert_eq!(r.ops.total(), 4, "2 texels x (1 fetch + 1 alu)");
        assert!(r.shader_seconds > 0.0);
        assert_eq!(r.overhead_seconds, 500e-6);
    }

    #[test]
    #[should_panic(expected = "JIT-compiled")]
    fn dispatch_without_compile_rejected() {
        let dev = GpuDevice::geforce_7900gtx();
        let input = Texture::new(1);
        dev.dispatch(&Doubler, &[&input], 1);
    }

    /// A gather shader whose texels read across batch boundaries, so a
    /// batching bug (wrong offsets, reordered fold) would corrupt the output.
    struct CrossGather;
    impl Shader for CrossGather {
        fn execute(
            &self,
            inputs: &[&Texture],
            out_index: usize,
            _c: &ShaderConstants,
            ops: &mut ShaderOps,
        ) -> [f32; 4] {
            let t = inputs[0];
            let a = t.fetch(out_index);
            let b = t.fetch(t.len() - 1 - out_index);
            ops.fetches += 2;
            ops.alu += 3;
            [a[0] + b[0], a[1] * b[1], a[2] - b[2], out_index as f32]
        }
    }

    #[test]
    fn parallel_dispatch_matches_serial_bitwise() {
        // 700 texels: three batches, the last one partial.
        let pts: Vec<[f32; 3]> = (0..700)
            .map(|i| [i as f32 * 0.31, (i as f32).sin(), 700.0 - i as f32])
            .collect();
        let input = Texture::from_xyz(&pts);
        let mut dev = GpuDevice::geforce_7900gtx();
        dev.compile(ShaderConstants::default());
        let serial = dev.dispatch(&CrossGather, &[&input], 700);
        for threads in [1usize, 2, 4, 8] {
            let par = dev.dispatch_par(
                &CrossGather,
                &[&input],
                700,
                HostParallelism::Threads(threads),
            );
            assert_eq!(par.output.texels(), serial.output.texels(), "{threads}");
            assert_eq!(par.ops.alu, serial.ops.alu);
            assert_eq!(par.ops.fetches, serial.ops.fetches);
            assert_eq!(par.shader_seconds, serial.shader_seconds);
        }
    }

    #[test]
    fn transfer_costs_scale_with_size_and_readback_is_slower() {
        let dev = GpuDevice::geforce_7900gtx();
        let small = Texture::new(64);
        let large = Texture::new(4096);
        assert!(dev.upload_seconds(&large) > dev.upload_seconds(&small));
        assert!(dev.readback_seconds(&large) > dev.upload_seconds(&large));
    }

    #[test]
    #[should_panic(expected = "input textures")]
    fn input_texture_limit_enforced() {
        let mut dev = GpuDevice::geforce_7900gtx();
        dev.compile(ShaderConstants::default());
        let t = Texture::new(1);
        let inputs: Vec<&Texture> = (0..17).map(|_| &t).collect();
        dev.dispatch(&Doubler, &inputs, 1);
    }

    #[test]
    fn startup_tracked_separately() {
        let mut dev = GpuDevice::geforce_7900gtx();
        assert_eq!(dev.startup_seconds(), 0.0);
        dev.compile(ShaderConstants::default());
        assert_eq!(dev.startup_seconds(), 0.2);
    }
}
