//! GPU timing parameters, calibrated to a GeForce 7900GTX-class part.

/// Machine parameters of the simulated GPU and its host link.
#[derive(Clone, Copy, Debug)]
pub struct GpuConfig {
    /// Shader core clock in Hz (650 MHz on the 7900GTX).
    pub clock_hz: f64,
    /// Parallel pixel pipelines (24 on the 7900GTX; the paper notes "that
    /// number is growing").
    pub n_pipes: usize,
    /// Host→GPU PCIe bandwidth in bytes/second (~3 GB/s effective, PCIe 1.0 x16).
    pub upload_bytes_per_sec: f64,
    /// GPU→host readback bandwidth in bytes/second (~1 GB/s effective —
    /// readback was notoriously slower on 2006 drivers).
    pub readback_bytes_per_sec: f64,
    /// Fixed latency per PCIe transfer (driver + DMA setup), seconds.
    pub transfer_latency_s: f64,
    /// Fixed cost per shader dispatch (driver validation, state setup,
    /// pipeline flush), seconds. This is the constant per-step cost that
    /// makes the GPU lose at small N in Figure 7.
    pub dispatch_overhead_s: f64,
    /// One-time cost to JIT-compile the shader with its baked-in constants at
    /// program initialization ("a fraction of a second ... quickly amortized",
    /// excluded from Figure 7's timings, tracked separately).
    pub jit_startup_s: f64,
    /// Host CPU cost per atom for the linear-time work it keeps (PE summation
    /// during readback, integration), seconds/atom/step.
    pub cpu_linear_s_per_atom: f64,
    /// Maximum simultaneously bound input textures ("there are technical
    /// limitations on the number of input and output arrays addressable in
    /// any particular shader program").
    pub max_input_textures: usize,
}

impl GpuConfig {
    /// The paper's NVIDIA GeForce 7900GTX + 2.2 GHz Opteron host.
    pub fn geforce_7900gtx() -> Self {
        Self {
            clock_hz: 650e6,
            n_pipes: 24,
            upload_bytes_per_sec: 3.0e9,
            readback_bytes_per_sec: 1.0e9,
            transfer_latency_s: 10e-6,
            // Per-pass driver/sync cost (draw call + glFinish on 2006-era
            // OpenGL GPGPU). Calibrated so the offload overhead, not the
            // shader, dominates runs at N <= 512 atoms — the attribution the
            // paper gives for the GPU losing to the CPU at small N.
            dispatch_overhead_s: 500e-6,
            jit_startup_s: 0.2,
            cpu_linear_s_per_atom: 25e-9,
            max_input_textures: 16,
        }
    }

    /// The previous generation shown in the paper's Figure 2: the NVIDIA
    /// GeForce 6800 with "16 parallel pixel pipelines" at 400 MHz.
    pub fn geforce_6800() -> Self {
        Self {
            clock_hz: 400e6,
            n_pipes: 16,
            ..Self::geforce_7900gtx()
        }
    }

    /// Shader ops the device retires per second (all pipes).
    pub fn ops_per_second(&self) -> f64 {
        self.clock_hz * self.n_pipes as f64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::geforce_7900gtx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput() {
        let c = GpuConfig::geforce_7900gtx();
        assert_eq!(c.n_pipes, 24);
        assert!((c.ops_per_second() - 15.6e9).abs() < 1e6);
    }

    #[test]
    fn readback_slower_than_upload() {
        let c = GpuConfig::geforce_7900gtx();
        assert!(c.readback_bytes_per_sec < c.upload_bytes_per_sec);
    }

    #[test]
    fn generations_ordered_by_throughput() {
        // "the next generation from NVIDIA contained 24 pipelines, and that
        // number is growing."
        let old = GpuConfig::geforce_6800();
        let new = GpuConfig::geforce_7900gtx();
        assert_eq!(old.n_pipes, 16);
        assert!(new.ops_per_second() > 2.0 * old.ops_per_second());
    }
}
