//! Functional simulator of a 2006-era streaming GPU (paper section 3.2/5.2).
//!
//! The programming model the paper describes — and this crate *enforces* —
//! is the pre-CUDA, graphics-pipeline one:
//!
//! - GPUs are **stream processors**: "a shader program cannot read and write
//!   to the same memory location. Arrays must be designated as either input
//!   or output, but not both." ([`Texture`]s are read-only at dispatch time;
//!   the output array is created by the dispatch.)
//! - Execution is **gather-based**: "a shader program may read from any input
//!   locations, but it has only one location in each output array to which it
//!   may write, designated before the program begins execution." (A
//!   [`Shader`] receives its fixed output index and returns one texel.)
//! - There is **no communication between shader instances**, so a global sum
//!   (the potential energy) cannot be produced in one pass; the paper's trick
//!   — returning each atom's PE contribution in the free fourth component of
//!   the 4-component acceleration texel and summing on the CPU "for free"
//!   during readback — is exactly what [`mdshader::LjAccelShader`] does.
//! - The CPU orchestrates everything and pays **PCIe transfer costs** each
//!   time step (positions up, accelerations back), plus a per-dispatch driver
//!   overhead; these O(N) and constant per-step costs are what make the GPU
//!   *slower* than the CPU at small atom counts in Figure 7.
//!
//! Compute is performed for real in `f32`; a deterministic cost model
//! calibrated to a GeForce 7900GTX-class part (24 pipelines at 650 MHz)
//! produces simulated runtimes.

mod config;
mod device;
pub mod mdshader;
pub mod reduction;
mod runner;
mod shader;
mod texture;

pub use config::GpuConfig;
pub use device::{DispatchResult, GpuDevice};
pub use mdshader::LjAccelShader;
pub use reduction::{reduce_on_gpu, ReductionCost, ReductionStrategy, SumShader};
pub use runner::{GpuMdSimulation, GpuRun, GpuStepBreakdown};
pub use shader::{Shader, ShaderConstants, ShaderOps};
pub use texture::Texture;
