//! The MD acceleration shader (paper section 5.2).
//!
//! One shader instance per atom: it scans the entire position texture for
//! atoms within the cutoff and accumulates their force contributions into a
//! single acceleration value. The atom's potential-energy contribution is
//! stored in the fourth component of the output texel, so it is "retrieved
//! for free" by the acceleration readback and summed in linear time on the
//! CPU — the paper's alternative to an expensive multi-pass GPU reduction.
//!
//! 2006 fragment pipelines had very limited dynamic branching, so the cutoff
//! test is implemented by *predication*: the pair term is computed for every
//! examined pair and multiplied by a 0/1 mask. That makes the shader's cost
//! uniform per pair — which is also why the GPU's runtime in Figure 7 is a
//! clean function of N² with no dependence on how many pairs actually
//! interact.
//!
//! The pair physics itself comes from the run's [`Substrate`] (DESIGN.md
//! §16): the paper-faithful default is the predicated Lennard-Jones above,
//! and alternative potentials charge extra ALU slots per pair — on this
//! hardware a longer pair expression is simply a longer fragment program.

use crate::device::{DispatchResult, GpuDevice, FRAGMENT_BATCH};
use crate::shader::{Shader, ShaderConstants, ShaderOps};
use crate::texture::Texture;
use md_core::device::HostParallelism;
use md_core::parallel::map_indexed;
use md_core::scenario::Substrate;
use md_core::shared_eval::{self, SoaPositionsF32};
use vecmath::Real;

/// Indices of the kernel constants inside [`ShaderConstants`].
///
/// The constant block is the shader's JIT identity: any scenario change
/// (potential kind or parameters, precision policy) lands in these slots, so
/// a different scenario forces a re-JIT exactly like the paper's
/// constant-folding compiler would.
pub mod constants {
    pub const BOX_LEN: usize = 0;
    pub const CUTOFF2: usize = 1;
    /// Potential discriminant (0 = LJ, 1 = Morse, 2 = cutoff-Coulomb).
    pub const POT_KIND: usize = 2;
    /// First potential parameter (ε, well depth, or q²).
    pub const POT_A: usize = 3;
    /// Second potential parameter (σ², stiffness, or unused).
    pub const POT_B: usize = 4;
    /// Third potential parameter (r₀ for Morse; otherwise unused).
    pub const POT_C: usize = 5;
    pub const INV_MASS: usize = 6;
    /// 1.0 when per-instance accumulation runs in f64 (mixed policy).
    pub const MIXED_ACC: usize = 7;
}

/// ALU instructions charged per examined pair: minimum-image (compare +
/// select per the 3 axes packed in one 4-wide op each), direction, dot,
/// predicated LJ evaluation, masked accumulate. Calibrated so a
/// 7900GTX-class part lands near the paper's ~6x at 2048 atoms.
/// Non-LJ potentials charge [`Substrate::extra_eval_ops`] on top.
pub const ALU_PER_PAIR: u64 = 21;
/// Texture fetches per examined pair (the j-atom position).
pub const FETCH_PER_PAIR: u64 = 1;
/// Per-instance fixed ALU (own position fetch handled in fetches).
pub const ALU_PER_INSTANCE: u64 = 6;

/// The pair-potential acceleration shader (named for its paper-faithful
/// Lennard-Jones default; the substrate may swap in Morse or Coulomb).
#[derive(Clone, Copy, Debug)]
pub struct LjAccelShader {
    /// Number of atoms (texels in the position texture).
    pub n_atoms: usize,
    /// Resolved scenario physics evaluated per surviving pair.
    pub sub: Substrate<f32>,
    /// Extra ALU slots per examined pair for non-LJ potentials (longer
    /// fragment program under predication — charged for every pair).
    extra_alu: u64,
}

impl LjAccelShader {
    pub fn new(n_atoms: usize, sub: Substrate<f32>) -> Self {
        let mut extra_alu = 0u64;
        let mut left = sub.extra_eval_ops();
        while left >= 1.0 {
            extra_alu += 1;
            left -= 1.0;
        }
        Self {
            n_atoms,
            sub,
            extra_alu,
        }
    }

    /// Pack the kernel parameters into the JIT-baked constant block. Every
    /// field that changes the compiled program appears here, so
    /// [`crate::device::GpuDevice::compile`] re-JITs exactly when the
    /// scenario (or geometry) changes.
    pub fn constants(box_len: f32, inv_mass: f32, sub: &Substrate<f32>) -> ShaderConstants {
        let mut values = [0.0f32; 8];
        values[constants::BOX_LEN] = box_len;
        values[constants::CUTOFF2] = sub.cutoff2();
        let (kind, a, b, c) = sub.pot_constants();
        values[constants::POT_KIND] = kind;
        values[constants::POT_A] = a;
        values[constants::POT_B] = b;
        values[constants::POT_C] = c;
        values[constants::INV_MASS] = inv_mass;
        values[constants::MIXED_ACC] = if sub.accumulate_f64 { 1.0 } else { 0.0 };
        ShaderConstants { values }
    }

    /// Physics-once dispatch: the fragment-batch row replay (DESIGN.md §17).
    ///
    /// Computes the same output texture as
    /// [`GpuDevice::dispatch_par`]`(self, ..)` through the shared wide
    /// evaluator ([`shared_eval::gpu_texel`], which reproduces [`execute`]'s
    /// per-pair arithmetic bit for bit), and *replays* the op tally as a
    /// closed form instead of counting fetch/ALU slots pair by pair.
    /// Predication makes that exact, not approximate: the interpretive
    /// shader charges every examined pair identically regardless of the
    /// cutoff outcome, so each texel retires exactly
    /// `1 + N·FETCH_PER_PAIR` fetches and
    /// `ALU_PER_INSTANCE + N·(ALU_PER_PAIR + extra_alu)` ALU slots, and the
    /// per-batch u64 sums — folded in the same batch order — are equal by
    /// construction. Identical ops mean identical `shader_seconds`.
    ///
    /// The compile-before-dispatch JIT contract still holds: the kernel
    /// constants come from the device's compiled block, exactly as the
    /// interpretive path reads them.
    ///
    /// [`execute`]: Shader::execute
    pub fn dispatch_shared(
        &self,
        device: &GpuDevice,
        positions: &Texture,
        par: HostParallelism,
    ) -> DispatchResult {
        let c = device
            .compiled_constants()
            // sim-vet: allow(panic-discipline): compile-before-dispatch is an API contract (the JIT protocol), not a runtime data failure
            .expect("shader must be JIT-compiled (GpuDevice::compile) before dispatch");
        let n = self.n_atoms;
        let l = c.values[constants::BOX_LEN];
        let inv_mass = c.values[constants::INV_MASS];
        let soa = SoaPositionsF32::from_quads(positions.texels().iter().copied());

        // The interpretive shader's per-texel retirement, as a closed form.
        let per_texel_fetches = 1 + n as u64 * FETCH_PER_PAIR;
        let per_texel_alu = ALU_PER_INSTANCE + n as u64 * (ALU_PER_PAIR + self.extra_alu);

        // Same fixed batch decomposition as the interpretive dispatch: the
        // batches depend only on the output length, and the serial fold below
        // commits texels and op tallies in batch order.
        let n_batches = n.div_ceil(FRAGMENT_BATCH);
        let batches = map_indexed(par, n_batches, |b| {
            let lo = b * FRAGMENT_BATCH;
            let hi = (lo + FRAGMENT_BATCH).min(n);
            let ops = ShaderOps {
                alu: (hi - lo) as u64 * per_texel_alu,
                fetches: (hi - lo) as u64 * per_texel_fetches,
            };
            let texels: Vec<[f32; 4]> = (lo..hi)
                .map(|i| shared_eval::gpu_texel(&soa, i, l, &self.sub, inv_mass))
                .collect();
            (texels, ops)
        });
        let mut output = Texture::new(n);
        let mut ops = ShaderOps::default();
        let mut cursor = 0usize;
        for (texels, batch_ops) in batches {
            for texel in texels {
                output.texels_mut()[cursor] = texel;
                cursor += 1;
            }
            ops.alu += batch_ops.alu;
            ops.fetches += batch_ops.fetches;
        }
        device.finish_dispatch(output, ops)
    }
}

impl Shader for LjAccelShader {
    fn execute(
        &self,
        inputs: &[&Texture],
        out_index: usize,
        c: &ShaderConstants,
        ops: &mut ShaderOps,
    ) -> [f32; 4] {
        let positions = inputs[0];
        let l = c.values[constants::BOX_LEN];
        let half_l = 0.5 * l;
        let cutoff2 = self.sub.cutoff2();
        let inv_mass = c.values[constants::INV_MASS];
        let mixed = self.sub.accumulate_f64;

        let pi = positions.fetch(out_index);
        ops.fetches += 1;
        ops.alu += ALU_PER_INSTANCE;

        let mut acc = [0.0f32; 3];
        let mut pe = 0.0f32;
        // Mixed-precision policy: per-instance accumulators widen to f64
        // (temporary registers), narrowed once at output-texel store.
        // sim-vet: begin-allow(precision-discipline): the mixed policy's wide temporaries are intentional — narrowed once at the texel store
        let mut acc64 = [0.0f64; 3];
        let mut pe64 = 0.0f64;
        // sim-vet: end-allow(precision-discipline)

        for j in 0..self.n_atoms {
            // The shader examines every texel, including its own: the
            // self-pair is eliminated by the predication mask, not a branch.
            let pj = positions.fetch(j);
            ops.fetches += FETCH_PER_PAIR;
            ops.alu += ALU_PER_PAIR + self.extra_alu;

            // Minimum image via compare/select per axis (4-wide on hardware).
            let mut d = [0.0f32; 3];
            for k in 0..3 {
                let mut dk = pi[k] - pj[k];
                dk += if dk > half_l { -l } else { 0.0 };
                dk += if dk < -half_l { l } else { 0.0 };
                d[k] = dk;
            }
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];

            // Predicated pair term: the evaluation is always *charged* (the
            // ops were counted above regardless of the outcome), and the
            // masked-off lanes are discarded — which is what hardware
            // predication does with the garbage values a self-pair (r² = 0)
            // would produce.
            let masked = r2 < cutoff2 && r2 > 0.0;
            if masked {
                let (e, f_over_r) = self.sub.energy_force(r2);
                if mixed {
                    // sim-vet: begin-allow(precision-discipline): mixed policy widens per-pair contributions to the wide accumulators
                    pe64 += f64::from(e);
                    for k in 0..3 {
                        acc64[k] += f64::from(d[k] * f_over_r * inv_mass);
                    }
                    // sim-vet: end-allow(precision-discipline)
                } else {
                    pe += e;
                    for k in 0..3 {
                        acc[k] += d[k] * f_over_r * inv_mass;
                    }
                }
            }
        }

        if mixed {
            for k in 0..3 {
                acc[k] = f32::from_f64(acc64[k]);
            }
            pe = f32::from_f64(pe64);
        }
        [acc[0], acc[1], acc[2], pe]
    }

    fn name(&self) -> &'static str {
        "lj-accel"
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::device::GpuDevice;
    use md_core::scenario::ScenarioSpec;

    fn dispatch(points: &[[f32; 3]], box_len: f32) -> (Texture, ShaderOps) {
        dispatch_scenario(points, box_len, ScenarioSpec::default())
    }

    fn dispatch_scenario(
        points: &[[f32; 3]],
        box_len: f32,
        spec: ScenarioSpec,
    ) -> (Texture, ShaderOps) {
        let n = points.len();
        let sub: Substrate<f32> = spec.substrate(2.5);
        let mut dev = GpuDevice::geforce_7900gtx();
        dev.compile(LjAccelShader::constants(box_len, 1.0, &sub));
        let tex = Texture::from_xyz(points);
        let shader = LjAccelShader::new(n, sub);
        let r = dev.dispatch(&shader, &[&tex], n);
        (r.output, r.ops)
    }

    #[test]
    fn two_body_forces_and_pe() {
        let (out, _) = dispatch(&[[1.0, 1.0, 1.0], [2.2, 1.0, 1.0]], 20.0);
        let a0 = out.fetch(0);
        let a1 = out.fetch(1);
        // Attractive at 1.2σ: atom 0 pulled +x; equal and opposite.
        assert!(a0[0] > 0.0);
        assert!((a0[0] + a1[0]).abs() < 1e-4);
        // PE symmetric and negative.
        assert!(a0[3] < 0.0);
        assert!((a0[3] - a1[3]).abs() < 1e-6);
    }

    #[test]
    fn self_pair_masked_no_nan() {
        let (out, _) = dispatch(&[[5.0, 5.0, 5.0]], 20.0);
        let a = out.fetch(0);
        assert!(
            a.iter().all(|v| v.is_finite()),
            "self-pair must not produce NaN: {a:?}"
        );
        assert_eq!(a, [0.0; 4]);
    }

    #[test]
    fn wraps_through_the_boundary() {
        let (out, _) = dispatch(&[[0.5, 5.0, 5.0], [19.5, 5.0, 5.0]], 20.0);
        let a0 = out.fetch(0);
        // r = 1 through the wall: repulsive force 24 pushes atom 0 in +x.
        assert!((a0[0] - 24.0).abs() < 1e-3, "got {a0:?}");
    }

    #[test]
    fn op_count_uniform_in_pairs() {
        let (_, ops_dense) = dispatch(&[[1.0, 1.0, 1.0], [1.5, 1.0, 1.0], [2.0, 1.0, 1.0]], 20.0);
        let (_, ops_sparse) = dispatch(
            &[[1.0, 1.0, 1.0], [8.0, 8.0, 8.0], [15.0, 15.0, 15.0]],
            20.0,
        );
        // Predication: cost depends only on N, not on interactions.
        assert_eq!(ops_dense.total(), ops_sparse.total());
        let n = 3u64;
        assert_eq!(
            ops_dense.total(),
            n * (1 + ALU_PER_INSTANCE) + n * n * (FETCH_PER_PAIR + ALU_PER_PAIR)
        );
    }

    #[test]
    fn non_lj_potential_charges_extra_alu() {
        let pts = [[1.0, 1.0, 1.0], [1.5, 1.0, 1.0], [2.0, 1.0, 1.0]];
        let (_, lj) = dispatch(&pts, 20.0);
        let (_, morse) = dispatch_scenario(&pts, 20.0, ScenarioSpec::morse_nvt());
        let n = 3u64;
        let extra = morse.total() - lj.total();
        assert_eq!(extra % (n * n), 0, "extra ALU is per examined pair");
        assert!(extra > 0, "Morse pair term is longer than LJ");
    }

    #[test]
    fn morse_two_body_attractive_past_minimum() {
        let (out, _) = dispatch_scenario(
            &[[1.0, 1.0, 1.0], [2.5, 1.0, 1.0]],
            20.0,
            ScenarioSpec::morse_nvt(),
        );
        let a0 = out.fetch(0);
        // Past r₀: the Morse well pulls atom 0 toward atom 1 (+x).
        assert!(a0[0] > 0.0, "got {a0:?}");
        assert!(a0[3] < 0.0, "bound pair has negative PE: {a0:?}");
    }

    /// The physics-once contract at the dispatch level: the shared-eval
    /// replay produces the same texels, op tally, and charged seconds as the
    /// interpretive per-pair walk — bit for bit — for every scenario flavor,
    /// at an output length that exercises a partial fragment batch.
    #[test]
    fn shared_dispatch_is_bitwise_identical() {
        use md_core::scenario::PrecisionPolicy;
        let n = FRAGMENT_BATCH + 44;
        let pts: Vec<[f32; 3]> = (0..n)
            .map(|i| {
                let t = i as f32;
                [
                    (t * 0.37).rem_euclid(6.0),
                    (t * 0.73 + 1.1).rem_euclid(6.0),
                    (t * 1.19 + 2.3).rem_euclid(6.0),
                ]
            })
            .collect();
        for spec in [
            ScenarioSpec::default(),
            ScenarioSpec::morse_nvt(),
            ScenarioSpec::default().with_precision(PrecisionPolicy::MixedF64Accumulate),
        ] {
            let sub: Substrate<f32> = spec.substrate(2.5);
            let mut dev = GpuDevice::geforce_7900gtx();
            dev.compile(LjAccelShader::constants(6.0, 0.5, &sub));
            let tex = Texture::from_xyz(&pts);
            let shader = LjAccelShader::new(n, sub);
            let interp = dev.dispatch(&shader, &[&tex], n);
            for threads in [1usize, 2, 8] {
                let shared = shader.dispatch_shared(&dev, &tex, HostParallelism::Threads(threads));
                assert_eq!(shared.output.texels(), interp.output.texels(), "{threads}");
                assert_eq!(shared.ops.alu, interp.ops.alu);
                assert_eq!(shared.ops.fetches, interp.ops.fetches);
                assert_eq!(shared.shader_seconds, interp.shader_seconds);
                assert_eq!(shared.overhead_seconds, interp.overhead_seconds);
            }
        }
    }

    #[test]
    fn mixed_policy_narrowed_output_close_to_native() {
        let pts = [[1.0, 1.0, 1.0], [2.2, 1.0, 1.0], [3.1, 1.0, 1.0]];
        let (native, _) = dispatch(&pts, 20.0);
        let (mixed, _) = dispatch_scenario(
            &pts,
            20.0,
            ScenarioSpec::default()
                .with_precision(md_core::scenario::PrecisionPolicy::MixedF64Accumulate),
        );
        for i in 0..pts.len() {
            let a = native.fetch(i);
            let b = mixed.fetch(i);
            for k in 0..4 {
                assert!(
                    (a[k] - b[k]).abs() <= 1e-5 * a[k].abs().max(1.0),
                    "texel {i}.{k}: {} vs {}",
                    a[k],
                    b[k]
                );
            }
        }
    }
}
