//! The MD acceleration shader (paper section 5.2).
//!
//! One shader instance per atom: it scans the entire position texture for
//! atoms within the cutoff and accumulates their force contributions into a
//! single acceleration value. The atom's potential-energy contribution is
//! stored in the fourth component of the output texel, so it is "retrieved
//! for free" by the acceleration readback and summed in linear time on the
//! CPU — the paper's alternative to an expensive multi-pass GPU reduction.
//!
//! 2006 fragment pipelines had very limited dynamic branching, so the cutoff
//! test is implemented by *predication*: the Lennard-Jones term is computed
//! for every examined pair and multiplied by a 0/1 mask. That makes the
//! shader's cost uniform per pair — which is also why the GPU's runtime in
//! Figure 7 is a clean function of N² with no dependence on how many pairs
//! actually interact.

use crate::shader::{Shader, ShaderConstants, ShaderOps};
use crate::texture::Texture;

/// Indices of the kernel constants inside [`ShaderConstants`].
pub mod constants {
    pub const BOX_LEN: usize = 0;
    pub const CUTOFF2: usize = 1;
    pub const EPSILON: usize = 2;
    pub const SIGMA2: usize = 3;
    pub const INV_MASS: usize = 4;
}

/// ALU instructions charged per examined pair: minimum-image (compare +
/// select per the 3 axes packed in one 4-wide op each), direction, dot,
/// predicated LJ evaluation, masked accumulate. Calibrated so a
/// 7900GTX-class part lands near the paper's ~6x at 2048 atoms.
pub const ALU_PER_PAIR: u64 = 21;
/// Texture fetches per examined pair (the j-atom position).
pub const FETCH_PER_PAIR: u64 = 1;
/// Per-instance fixed ALU (own position fetch handled in fetches).
pub const ALU_PER_INSTANCE: u64 = 6;

/// The Lennard-Jones acceleration shader.
#[derive(Clone, Copy, Debug)]
pub struct LjAccelShader {
    /// Number of atoms (texels in the position texture).
    pub n_atoms: usize,
}

impl LjAccelShader {
    pub fn new(n_atoms: usize) -> Self {
        Self { n_atoms }
    }

    /// Pack the kernel parameters into the JIT-baked constant block.
    pub fn constants(
        box_len: f32,
        cutoff2: f32,
        epsilon: f32,
        sigma: f32,
        inv_mass: f32,
    ) -> ShaderConstants {
        let mut values = [0.0f32; 8];
        values[constants::BOX_LEN] = box_len;
        values[constants::CUTOFF2] = cutoff2;
        values[constants::EPSILON] = epsilon;
        values[constants::SIGMA2] = sigma * sigma;
        values[constants::INV_MASS] = inv_mass;
        ShaderConstants { values }
    }
}

impl Shader for LjAccelShader {
    fn execute(
        &self,
        inputs: &[&Texture],
        out_index: usize,
        c: &ShaderConstants,
        ops: &mut ShaderOps,
    ) -> [f32; 4] {
        let positions = inputs[0];
        let l = c.values[constants::BOX_LEN];
        let half_l = 0.5 * l;
        let cutoff2 = c.values[constants::CUTOFF2];
        let epsilon = c.values[constants::EPSILON];
        let sigma2 = c.values[constants::SIGMA2];
        let inv_mass = c.values[constants::INV_MASS];

        let pi = positions.fetch(out_index);
        ops.fetches += 1;
        ops.alu += ALU_PER_INSTANCE;

        let mut acc = [0.0f32; 3];
        let mut pe = 0.0f32;

        for j in 0..self.n_atoms {
            // The shader examines every texel, including its own: the
            // self-pair is eliminated by the predication mask, not a branch.
            let pj = positions.fetch(j);
            ops.fetches += FETCH_PER_PAIR;
            ops.alu += ALU_PER_PAIR;

            // Minimum image via compare/select per axis (4-wide on hardware).
            let mut d = [0.0f32; 3];
            for k in 0..3 {
                let mut dk = pi[k] - pj[k];
                dk += if dk > half_l { -l } else { 0.0 };
                dk += if dk < -half_l { l } else { 0.0 };
                d[k] = dk;
            }
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];

            // Predicated LJ: the evaluation is always *charged* (the ops were
            // counted above regardless of the outcome), and the masked-off
            // lanes are discarded — which is what hardware predication does
            // with the garbage values a self-pair (r² = 0) would produce.
            let masked = r2 < cutoff2 && r2 > 0.0;
            if masked {
                let inv_r2 = 1.0 / r2;
                let s2 = sigma2 * inv_r2;
                let s6 = s2 * s2 * s2;
                let s12 = s6 * s6;
                let e = 4.0 * epsilon * (s12 - s6);
                let f_over_r = 24.0 * epsilon * (2.0 * s12 - s6) * inv_r2;
                pe += e;
                for k in 0..3 {
                    acc[k] += d[k] * f_over_r * inv_mass;
                }
            }
        }

        [acc[0], acc[1], acc[2], pe]
    }

    fn name(&self) -> &'static str {
        "lj-accel"
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::device::GpuDevice;

    fn dispatch(points: &[[f32; 3]], box_len: f32) -> (Texture, ShaderOps) {
        let n = points.len();
        let mut dev = GpuDevice::geforce_7900gtx();
        dev.compile(LjAccelShader::constants(box_len, 6.25, 1.0, 1.0, 1.0));
        let tex = Texture::from_xyz(points);
        let shader = LjAccelShader::new(n);
        let r = dev.dispatch(&shader, &[&tex], n);
        (r.output, r.ops)
    }

    #[test]
    fn two_body_forces_and_pe() {
        let (out, _) = dispatch(&[[1.0, 1.0, 1.0], [2.2, 1.0, 1.0]], 20.0);
        let a0 = out.fetch(0);
        let a1 = out.fetch(1);
        // Attractive at 1.2σ: atom 0 pulled +x; equal and opposite.
        assert!(a0[0] > 0.0);
        assert!((a0[0] + a1[0]).abs() < 1e-4);
        // PE symmetric and negative.
        assert!(a0[3] < 0.0);
        assert!((a0[3] - a1[3]).abs() < 1e-6);
    }

    #[test]
    fn self_pair_masked_no_nan() {
        let (out, _) = dispatch(&[[5.0, 5.0, 5.0]], 20.0);
        let a = out.fetch(0);
        assert!(
            a.iter().all(|v| v.is_finite()),
            "self-pair must not produce NaN: {a:?}"
        );
        assert_eq!(a, [0.0; 4]);
    }

    #[test]
    fn wraps_through_the_boundary() {
        let (out, _) = dispatch(&[[0.5, 5.0, 5.0], [19.5, 5.0, 5.0]], 20.0);
        let a0 = out.fetch(0);
        // r = 1 through the wall: repulsive force 24 pushes atom 0 in +x.
        assert!((a0[0] - 24.0).abs() < 1e-3, "got {a0:?}");
    }

    #[test]
    fn op_count_uniform_in_pairs() {
        let (_, ops_dense) = dispatch(&[[1.0, 1.0, 1.0], [1.5, 1.0, 1.0], [2.0, 1.0, 1.0]], 20.0);
        let (_, ops_sparse) = dispatch(
            &[[1.0, 1.0, 1.0], [8.0, 8.0, 8.0], [15.0, 15.0, 15.0]],
            20.0,
        );
        // Predication: cost depends only on N, not on interactions.
        assert_eq!(ops_dense.total(), ops_sparse.total());
        let n = 3u64;
        assert_eq!(
            ops_dense.total(),
            n * (1 + ALU_PER_INSTANCE) + n * n * (FETCH_PER_PAIR + ALU_PER_PAIR)
        );
    }
}
