//! GPU-side reduction — the alternative the paper considered and rejected.
//!
//! "One option is to introduce one or more additional passes to accumulate
//! each atom's contribution to the total PE in a gather-type fashion, called
//! a reduction operation. However, this method introduces significant
//! overheads. Instead ... it makes more sense to simply read back each atom's
//! contribution to PE as well and sum them in linear time on the CPU."
//!
//! This module implements the rejected design so the claim can be measured:
//! a log₄(N) cascade of 4:1 sum passes over the w-lane of the acceleration
//! texture, each pass paying the full dispatch overhead. The
//! `ablation_gpu_reduction` bench and the integration tests show the CPU
//! readback strategy winning, reproducing the paper's design argument.

use crate::device::GpuDevice;
use crate::shader::{Shader, ShaderConstants, ShaderOps};
use crate::texture::Texture;

/// How the per-atom PE contributions are combined into the total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReductionStrategy {
    /// The paper's choice: PE rides in the w lane of the acceleration
    /// readback ("retrieved for free") and is summed on the CPU.
    CpuReadback,
    /// The rejected alternative: log₄(N) GPU passes, then a 1-texel readback.
    GpuMultiPass,
}

/// A 4:1 reduction shader: output[i] = Σ input[4i .. 4i+4] (w lane carried in
/// all four lanes so the final texel's w is the total).
pub struct SumShader {
    /// Number of valid texels in the input.
    pub in_len: usize,
}

impl Shader for SumShader {
    fn execute(
        &self,
        inputs: &[&Texture],
        out_index: usize,
        _constants: &ShaderConstants,
        ops: &mut ShaderOps,
    ) -> [f32; 4] {
        let input = inputs[0];
        let mut sum = 0.0f32;
        for k in 0..4 {
            let j = out_index * 4 + k;
            if j < self.in_len {
                sum += input.fetch(j)[3];
                ops.fetches += 1;
            }
            ops.alu += 1;
        }
        [sum, sum, sum, sum]
    }

    fn name(&self) -> &'static str {
        "sum4"
    }
}

/// Outcome of a GPU-side reduction: the total and the simulated cost.
#[derive(Clone, Copy, Debug)]
pub struct ReductionCost {
    pub total: f64,
    /// Dispatch passes executed.
    pub passes: usize,
    /// Simulated seconds: shader time + per-pass overheads + final readback.
    pub seconds: f64,
}

/// Run the multi-pass cascade over the w lane of `values` until one texel
/// remains. The device must already be compiled (constants are unused by the
/// sum shader but the 2006 toolchains required a program either way).
pub fn reduce_on_gpu(device: &GpuDevice, values: &Texture) -> ReductionCost {
    let mut current = values.clone();
    let mut seconds = 0.0;
    let mut passes = 0;
    while current.len() > 1 {
        let out_len = current.len().div_ceil(4);
        let shader = SumShader {
            in_len: current.len(),
        };
        let result = device.dispatch(&shader, &[&current], out_len);
        seconds += result.shader_seconds + result.overhead_seconds;
        passes += 1;
        current = result.output;
    }
    seconds += device.readback_seconds(&current);
    ReductionCost {
        total: current.fetch(0)[3] as f64,
        passes,
        seconds,
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn device() -> GpuDevice {
        let mut d = GpuDevice::geforce_7900gtx();
        d.compile(ShaderConstants::default());
        d
    }

    fn pe_texture(values: &[f32]) -> Texture {
        Texture::from_texels(values.iter().map(|&v| [0.0, 0.0, 0.0, v]).collect())
    }

    #[test]
    fn reduces_to_exact_sum_for_pow4_sizes() {
        let d = device();
        let t = pe_texture(&(0..64).map(|i| i as f32).collect::<Vec<_>>());
        let r = reduce_on_gpu(&d, &t);
        assert_eq!(r.total, (0..64).sum::<i32>() as f64);
        assert_eq!(r.passes, 3, "64 -> 16 -> 4 -> 1");
    }

    #[test]
    fn handles_non_pow4_sizes() {
        let d = device();
        let t = pe_texture(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let r = reduce_on_gpu(&d, &t);
        assert_eq!(r.total, 28.0);
        assert_eq!(r.passes, 2, "7 -> 2 -> 1");
    }

    #[test]
    fn single_texel_is_free_of_passes() {
        let d = device();
        let t = pe_texture(&[42.0]);
        let r = reduce_on_gpu(&d, &t);
        assert_eq!(r.total, 42.0);
        assert_eq!(r.passes, 0);
    }

    #[test]
    fn multipass_costs_more_than_linear_cpu_sum() {
        // The paper's design argument: at MD sizes the cascade's per-pass
        // dispatch overhead exceeds the "free" CPU summation riding on the
        // acceleration readback.
        let d = device();
        let n = 2048;
        let t = pe_texture(&vec![1.0; n]);
        let r = reduce_on_gpu(&d, &t);
        // CPU-side marginal cost of summing during an already-required
        // readback: ~n adds at host speed.
        let cpu_marginal = d.config.cpu_linear_s_per_atom * n as f64;
        assert!(
            r.seconds > 10.0 * cpu_marginal,
            "multi-pass {:.2e}s should dwarf the CPU's marginal {:.2e}s",
            r.seconds,
            cpu_marginal
        );
    }
}
