//! The shader programming model: gather-only, one output location.

use crate::texture::Texture;

/// Constants baked into the shader at JIT-compile time ("the constants were
/// compiled into the shader program source using the provided JIT compiler at
/// program initialization"). Changing them requires re-JIT.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShaderConstants {
    pub values: [f32; 8],
}

/// Instruction counter a shader reports its work through; the device converts
/// retired ops into pipeline-occupancy time.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShaderOps {
    /// Arithmetic (4-wide) shader instructions retired.
    pub alu: u64,
    /// Texture fetches issued.
    pub fetches: u64,
}

impl ShaderOps {
    pub fn total(&self) -> u64 {
        self.alu + self.fetches
    }
}

/// A shader program.
///
/// The signature *is* the stream-processing restriction: instances receive
/// read-only input textures and their pre-designated output index, and return
/// exactly one texel. There is no mechanism to write anywhere else, to read
/// the output array, or to communicate with another instance.
///
/// `Sync` is a supertrait because the same restriction is what lets the host
/// fan fragment batches out over threads ([`GpuDevice::dispatch_par`]):
/// instances share nothing, so a shader must be safe to call from many
/// threads at once.
///
/// [`GpuDevice::dispatch_par`]: crate::device::GpuDevice::dispatch_par
pub trait Shader: Sync {
    /// Compute the texel at `out_index`.
    fn execute(
        &self,
        inputs: &[&Texture],
        out_index: usize,
        constants: &ShaderConstants,
        ops: &mut ShaderOps,
    ) -> [f32; 4];

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "shader"
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    /// A toy shader: output[i] = input[i] scaled by constant 0, plus a gather
    /// of the mirrored element — exercises arbitrary-location reads.
    struct MirrorScale;

    impl Shader for MirrorScale {
        fn execute(
            &self,
            inputs: &[&Texture],
            out_index: usize,
            constants: &ShaderConstants,
            ops: &mut ShaderOps,
        ) -> [f32; 4] {
            let t = inputs[0];
            let a = t.fetch(out_index);
            let b = t.fetch(t.len() - 1 - out_index);
            ops.fetches += 2;
            ops.alu += 2;
            let s = constants.values[0];
            [(a[0] + b[0]) * s, (a[1] + b[1]) * s, (a[2] + b[2]) * s, 0.0]
        }
    }

    #[test]
    fn gather_reads_arbitrary_locations() {
        let t = Texture::from_xyz(&[[1.0, 0.0, 0.0], [2.0, 0.0, 0.0], [3.0, 0.0, 0.0]]);
        let c = ShaderConstants {
            values: [10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        let mut ops = ShaderOps::default();
        let out = MirrorScale.execute(&[&t], 0, &c, &mut ops);
        assert_eq!(out[0], 40.0); // (1 + 3) * 10
        assert_eq!(ops.fetches, 2);
        assert_eq!(ops.total(), 4);
    }
}
