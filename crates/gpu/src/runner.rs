//! The host-side MD driver for the GPU port.
//!
//! Per time step (paper section 5.2): the CPU sends the updated positions to
//! the GPU, the GPU computes all accelerations (and per-atom PE) in one
//! dispatch, the CPU reads the 4-component results back over PCIe, sums the
//! PE lanes in linear time, and integrates. The one-time JIT/startup cost is
//! tracked but excluded from the runtime, exactly as in Figure 7.

use crate::config::GpuConfig;
use crate::device::GpuDevice;
use crate::mdshader::LjAccelShader;
use crate::texture::Texture;
use md_core::init;
use md_core::observables::EnergyReport;
use md_core::params::SimConfig;
use md_core::system::ParticleSystem;
use md_core::verlet::VelocityVerlet;
use vecmath::Vec3;

/// Per-category simulated seconds across a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct GpuStepBreakdown {
    /// Position uploads (PCIe host→GPU).
    pub upload: f64,
    /// Shader pipeline occupancy.
    pub shader: f64,
    /// Per-dispatch driver overhead.
    pub dispatch_overhead: f64,
    /// Acceleration readback (PCIe GPU→host).
    pub readback: f64,
    /// Host CPU linear-time work (PE summation, integration).
    pub cpu: f64,
    /// GPU-side reduction passes (zero under the paper's CPU-readback
    /// strategy; the rejected multi-pass alternative accumulates here).
    pub gpu_reduction: f64,
}

impl GpuStepBreakdown {
    pub fn total(&self) -> f64 {
        self.upload
            + self.shader
            + self.dispatch_overhead
            + self.readback
            + self.cpu
            + self.gpu_reduction
    }
}

/// Result of a simulated GPU-accelerated run.
#[derive(Clone, Debug)]
pub struct GpuRun {
    /// Simulated runtime, startup excluded (Figure 7's quantity).
    pub sim_seconds: f64,
    /// One-time startup (JIT, context creation) — excluded from the above.
    pub startup_seconds: f64,
    pub breakdown: GpuStepBreakdown,
    pub energies: EnergyReport,
    /// Total shader ops retired.
    pub total_ops: u64,
    /// Injected-fault ledger for this run (zero when no plan is armed).
    /// `faults.exhausted > 0` means the modeled degraded path was taken;
    /// the harness supervisor treats that as a failed segment.
    #[cfg(feature = "fault-inject")]
    pub faults: sim_fault::FaultStats,
}

/// Driver for GPU-accelerated MD.
pub struct GpuMdSimulation {
    pub config: GpuConfig,
    /// Armed fault schedule; `None` runs fault-free (see DESIGN.md §9).
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<sim_fault::FaultPlan>,
    /// Physics-once execution (DESIGN.md §17): when set, each evaluation's
    /// texels come from the shared wide evaluator and the op tally is
    /// replayed in closed form ([`LjAccelShader::dispatch_shared`]) instead
    /// of the interpretive per-pair shader walk. Bitwise-identical output
    /// either way; on by default.
    eval_memo: bool,
}

impl GpuMdSimulation {
    pub fn new(config: GpuConfig) -> Self {
        Self {
            config,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
            eval_memo: true,
        }
    }

    /// Toggle the shared-eval replay path (the memo-off baseline runs the
    /// interpretive per-pair shader walk).
    pub fn set_eval_memo(&mut self, enabled: bool) {
        self.eval_memo = enabled;
    }

    /// Arm a deterministic fault schedule for subsequent `run_md*` calls.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: sim_fault::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    pub fn geforce_7900gtx() -> Self {
        Self::new(GpuConfig::geforce_7900gtx())
    }

    /// The previous GPU generation (16 pipelines at 400 MHz).
    pub fn geforce_6800() -> Self {
        Self::new(GpuConfig::geforce_6800())
    }

    /// Run with an explicit PE-reduction strategy — `GpuMultiPass` is the
    /// alternative the paper rejected; it exists so the overhead claim can be
    /// measured (see the `ablation_gpu_reduction` bench).
    pub fn run_md_with(
        &self,
        sim: &SimConfig,
        steps: usize,
        strategy: crate::reduction::ReductionStrategy,
    ) -> GpuRun {
        let mut sys: ParticleSystem<f32> = init::initialize(sim);
        self.run_md_impl(
            &mut sys,
            sim,
            steps,
            strategy,
            None,
            md_core::device::HostParallelism::Serial,
        )
    }

    fn run_md_impl(
        &self,
        sys: &mut ParticleSystem<f32>,
        sim: &SimConfig,
        steps: usize,
        strategy: crate::reduction::ReductionStrategy,
        mut perf: Option<&mut sim_perf::PerfMonitor>,
        par: md_core::device::HostParallelism,
    ) -> GpuRun {
        let n = sys.n();
        let vv = VelocityVerlet::new(sim.dt as f32);
        let sub = sim.substrate::<f32>();

        let mut device = GpuDevice::new(self.config);
        let shader = LjAccelShader::new(n, sub);
        device.compile(LjAccelShader::constants(sys.box_len, 1.0 / sys.mass, &sub));

        let mut breakdown = GpuStepBreakdown::default();
        let mut total_ops = 0u64;
        let mut pe = 0.0f64;
        let handles = perf.as_deref_mut().map(PerfHandles::register);
        let mut total_fetches = 0u64;
        let mut total_alu = 0u64;
        let mut bytes_up = 0u64;
        let mut bytes_down = 0u64;

        // One fault session per run; the functional transfers below always
        // deliver pristine data, so injected failures re-model only the cost
        // of detection and re-issue — never the physics.
        #[cfg(feature = "fault-inject")]
        let mut fault = self.fault_plan.map(sim_fault::FaultSession::new);

        // Priming evaluation + one per time step.
        for eval in 0..=steps {
            if eval > 0 {
                vv.kick_drift(sys);
                breakdown.cpu += self.config.cpu_linear_s_per_atom * n as f64;
            }

            // "At the next time step, the updated positions are re-sent to
            // the GPU and new accelerations computed again."
            let positions =
                Texture::from_texels(sys.positions.iter().map(|p| [p.x, p.y, p.z, 0.0]).collect());
            let upload = device.upload_seconds(&positions);
            breakdown.upload += upload;
            bytes_up += positions.size_bytes() as u64;
            #[cfg(feature = "fault-inject")]
            {
                // A timed-out host→GPU transfer costs the timeout window
                // (modeled as the transfer itself) plus the re-send.
                breakdown.upload += resolve_degradable(
                    &mut fault,
                    sim_fault::FaultSite::new(
                        sim_fault::FaultKind::TransferTimeout,
                        eval as u64,
                        0,
                        0,
                    ),
                    2.0 * upload,
                );
            }

            let result = if self.eval_memo {
                shader.dispatch_shared(&device, &positions, par)
            } else {
                device.dispatch_par(&shader, &[&positions], n, par)
            };
            breakdown.shader += result.shader_seconds;
            breakdown.dispatch_overhead += result.overhead_seconds;
            total_ops += result.ops.total();
            total_fetches += result.ops.fetches;
            total_alu += result.ops.alu;
            #[cfg(feature = "fault-inject")]
            {
                // A NaN-poisoned shader pass is detected on the host (a scan
                // of the output texels, already covered by the linear CPU
                // term) and the whole dispatch is re-issued.
                breakdown.shader += resolve_degradable(
                    &mut fault,
                    sim_fault::FaultSite::new(sim_fault::FaultKind::ShaderNan, eval as u64, 0, 0),
                    result.shader_seconds + result.overhead_seconds,
                );
            }

            let readback = device.readback_seconds(&result.output);
            breakdown.readback += readback;
            bytes_down += result.output.size_bytes() as u64;
            #[cfg(feature = "fault-inject")]
            {
                // A corrupted PCIe readback is caught by a host-side
                // checksum over the texels and re-read.
                breakdown.readback += resolve_degradable(
                    &mut fault,
                    sim_fault::FaultSite::new(
                        sim_fault::FaultKind::ReadbackCorruption,
                        eval as u64,
                        0,
                        1,
                    ),
                    readback,
                );
            }

            // The accelerations must come back to the host either way.
            for (i, texel) in result.output.texels().iter().enumerate() {
                sys.accelerations[i] = Vec3::new(texel[0], texel[1], texel[2]);
            }
            let pe_twice = match strategy {
                crate::reduction::ReductionStrategy::CpuReadback => {
                    // Linear-time CPU pass over the w lanes ("read back each
                    // atom's contribution to PE as well and sum them in
                    // linear time on the CPU").
                    breakdown.cpu += self.config.cpu_linear_s_per_atom * n as f64;
                    result
                        .output
                        .texels()
                        .iter()
                        .map(|t| t[3] as f64)
                        .sum::<f64>()
                }
                crate::reduction::ReductionStrategy::GpuMultiPass => {
                    let r = crate::reduction::reduce_on_gpu(&device, &result.output);
                    breakdown.gpu_reduction += r.seconds;
                    r.total
                }
            };
            pe = pe_twice * 0.5;

            if eval > 0 {
                vv.kick(sys);
                breakdown.cpu += self.config.cpu_linear_s_per_atom * n as f64;
                // Ensemble work (thermostat rescale) is one more O(N) host
                // pass; absent under NVE, so the paper runs charge nothing.
                if sub.extra_step_ops_per_atom() > 0.0 {
                    breakdown.cpu += self.config.cpu_linear_s_per_atom * n as f64;
                }
                sub.apply_thermostat(sys);
            }

            if let (Some(p), Some(h)) = (perf.as_deref_mut(), handles) {
                p.record_total(h.fetches, total_fetches as f64);
                p.record_total(h.shader_instructions, total_alu as f64);
                p.record_total(h.bytes_to_device, bytes_up as f64);
                p.record_total(h.bytes_from_device, bytes_down as f64);
                // The host blocks on every readback (the CPU-side reduction
                // needs the texels), so readback seconds *are* stall time.
                p.record_total(h.readback_stall_seconds, breakdown.readback);
                p.record_total(h.dispatches, (eval + 1) as f64);
                p.sample_all(breakdown.total());
            }
        }

        GpuRun {
            sim_seconds: breakdown.total(),
            startup_seconds: device.startup_seconds(),
            breakdown,
            energies: EnergyReport::measure(sys, pe),
            total_ops,
            #[cfg(feature = "fault-inject")]
            faults: fault.map_or_else(sim_fault::FaultStats::default, |f| f.stats()),
        }
    }
}

/// Registered handles for the GPU's counter set (texture fetches, shader
/// instructions, PCIe bytes per direction, readback stalls, dispatches).
#[derive(Clone, Copy)]
struct PerfHandles {
    fetches: sim_perf::CounterHandle,
    shader_instructions: sim_perf::CounterHandle,
    bytes_to_device: sim_perf::CounterHandle,
    bytes_from_device: sim_perf::CounterHandle,
    readback_stall_seconds: sim_perf::CounterHandle,
    dispatches: sim_perf::CounterHandle,
}

impl PerfHandles {
    fn register(p: &mut sim_perf::PerfMonitor) -> Self {
        Self {
            fetches: p.register("gpu.texture.fetches", "ops"),
            shader_instructions: p.register("gpu.shader.instructions", "ops"),
            bytes_to_device: p.register("gpu.pcie.bytes_to_device", "bytes"),
            bytes_from_device: p.register("gpu.pcie.bytes_from_device", "bytes"),
            readback_stall_seconds: p.register("gpu.readback.stall_seconds", "seconds"),
            dispatches: p.register("gpu.dispatches", "events"),
        }
    }
}

/// Apply the armed fault schedule to one injection site, returning the extra
/// simulated seconds to charge. The GPU driver's public run functions are
/// infallible, so retry-budget exhaustion degrades instead of erroring: the
/// modeled slow path (a device reset plus one conservative re-issue at 4x
/// cost) is charged and `FaultStats::exhausted` is incremented — the harness
/// supervisor treats a nonzero count as a failed segment.
#[cfg(feature = "fault-inject")]
fn resolve_degradable(
    fault: &mut Option<sim_fault::FaultSession>,
    site: sim_fault::FaultSite,
    unit_seconds: f64,
) -> f64 {
    let Some(sess) = fault.as_mut() else {
        return 0.0;
    };
    let out = sess.outcome(site);
    let mut extra = unit_seconds * f64::from(out.failures);
    if out.exhausted {
        extra += 4.0 * unit_seconds;
    }
    if extra > 0.0 {
        sess.charge(extra);
    }
    extra
}

impl md_core::device::MdDevice for GpuMdSimulation {
    fn label(&self) -> String {
        // Named models keep their historical metric labels; anything else is
        // identified by pipe count. The clock match is bit-exact on purpose:
        // a model label applies only to the unmodified factory constant.
        let c = &self.config;
        if c.n_pipes == 24 && c.clock_hz.to_bits() == 650e6_f64.to_bits() {
            "gpu-7900gtx".to_string()
        } else if c.n_pipes == 16 && c.clock_hz.to_bits() == 400e6_f64.to_bits() {
            "gpu-6800".to_string()
        } else {
            format!("gpu-{}pipes", c.n_pipes)
        }
    }

    fn peak_ops_per_second(&self) -> f64 {
        self.config.ops_per_second()
    }

    #[cfg(feature = "fault-inject")]
    fn resalt(&mut self, salt: u64) {
        self.fault_plan = self.fault_plan.map(|p| p.with_salt(salt));
    }

    fn run(
        &mut self,
        sim: &SimConfig,
        mut opts: md_core::device::RunOptions<'_>,
    ) -> Result<md_core::device::DeviceRun, md_core::device::DeviceError> {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = opts.fault_plan {
            self.fault_plan = Some(plan);
        }
        let par = opts.host_parallelism;
        let (mut sys, start_step): (ParticleSystem<f32>, u64) = match opts.start {
            Some(cp) => (cp.restore(), cp.step),
            None => (init::initialize(sim), 0),
        };
        // bytes_moved comes from the PCIe byte counters, so observe with a
        // local monitor when the caller didn't pass one (observation is free:
        // the counted run is bitwise-identical to the uncounted one).
        let mut local = sim_perf::PerfMonitor::new();
        let perf = match opts.perf.take() {
            Some(p) => p,
            None => &mut local,
        };
        let r = self.run_md_impl(
            &mut sys,
            sim,
            opts.steps,
            crate::reduction::ReductionStrategy::CpuReadback,
            Some(perf),
            par,
        );
        let b = r.breakdown;
        let bytes = md_core::device::counter_total(perf, "gpu.pcie.bytes_to_device")
            + md_core::device::counter_total(perf, "gpu.pcie.bytes_from_device");
        // The paper's small-N story: everything that exists only because the
        // GPU sits across a bus versus the work itself.
        let total = r.sim_seconds.max(f64::MIN_POSITIVE);
        let run = md_core::device::DeviceRun {
            sim_seconds: r.sim_seconds,
            energies: r.energies,
            checkpoint: md_core::checkpoint::SystemCheckpoint::capture(
                &sys,
                start_step + opts.steps as u64,
            ),
            attribution: vec![
                ("shader_compute", b.shader),
                ("pcie_upload", b.upload),
                ("pcie_readback", b.readback),
                ("dispatch_overhead", b.dispatch_overhead),
                ("cpu_serial", b.cpu),
                ("gpu_reduction", b.gpu_reduction),
            ],
            derived: vec![
                (
                    "transfer_overhead_fraction",
                    (b.upload + b.readback + b.dispatch_overhead) / total,
                ),
                (
                    "compute_fraction",
                    (b.shader + b.cpu + b.gpu_reduction) / total,
                ),
            ],
            ops: r.total_ops as f64,
            bytes_moved: bytes,
            #[cfg(feature = "fault-inject")]
            faults: r.faults,
            #[cfg(not(feature = "fault-inject"))]
            faults: md_core::device::FaultStats::default(),
        };
        if let Some(led) = opts.ledger.take() {
            let label = md_core::device::MdDevice::label(self);
            md_core::device::ledger_record_run(led, &label, &run, Some(perf));
        }
        Ok(run)
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use md_core::forces::{AllPairsFullKernel, ForceKernel};

    /// Test-local shorthand over the single run path (the public surface is
    /// [`md_core::device::MdDevice::run`]).
    fn run_md(m: &GpuMdSimulation, sim: &SimConfig, steps: usize) -> GpuRun {
        m.run_md_with(sim, steps, crate::reduction::ReductionStrategy::CpuReadback)
    }

    fn run_md_perf(
        m: &GpuMdSimulation,
        sim: &SimConfig,
        steps: usize,
        perf: &mut sim_perf::PerfMonitor,
    ) -> GpuRun {
        let mut sys: ParticleSystem<f32> = init::initialize(sim);
        m.run_md_impl(
            &mut sys,
            sim,
            steps,
            crate::reduction::ReductionStrategy::CpuReadback,
            Some(perf),
            md_core::device::HostParallelism::Serial,
        )
    }

    fn run_md_from(
        m: &GpuMdSimulation,
        sys: &mut ParticleSystem<f32>,
        sim: &SimConfig,
        steps: usize,
    ) -> GpuRun {
        m.run_md_impl(
            sys,
            sim,
            steps,
            crate::reduction::ReductionStrategy::CpuReadback,
            None,
            md_core::device::HostParallelism::Serial,
        )
    }

    #[test]
    fn physics_matches_f32_reference() {
        let sim = SimConfig::reduced_lj(256);
        let run = run_md(&GpuMdSimulation::geforce_7900gtx(), &sim, 3);

        let mut sys: ParticleSystem<f32> = init::initialize(&sim);
        let sub = sim.substrate::<f32>();
        let vv = VelocityVerlet::new(sim.dt as f32);
        let mut kernel = AllPairsFullKernel;
        let mut pe = kernel.compute(&mut sys, &sub);
        for _ in 0..3 {
            pe = vv.step(&mut sys, &mut kernel, &sub);
        }
        let expect = EnergyReport::measure(&sys, pe as f64);
        assert!(
            (run.energies.total - expect.total).abs() < 1e-3 * expect.total.abs(),
            "GPU {} vs reference {}",
            run.energies.total,
            expect.total
        );
    }

    #[test]
    fn startup_excluded_from_runtime() {
        let sim = SimConfig::reduced_lj(108);
        let run = run_md(&GpuMdSimulation::geforce_7900gtx(), &sim, 1);
        assert!(run.startup_seconds > 0.0);
        assert!(
            (run.sim_seconds - run.breakdown.total()).abs() < 1e-12,
            "runtime is the per-step breakdown only"
        );
    }

    #[test]
    fn per_step_costs_have_constant_and_linear_parts() {
        // Dispatch overhead is constant per step; transfers are O(N).
        let t = |n: usize| {
            run_md(
                &GpuMdSimulation::geforce_7900gtx(),
                &SimConfig::reduced_lj(n),
                2,
            )
            .breakdown
        };
        let a = t(256);
        let b = t(1024);
        assert_eq!(a.dispatch_overhead, b.dispatch_overhead);
        // Transfers have a fixed latency plus an O(N) bandwidth term.
        assert!(b.upload > a.upload, "uploads grow with N");
        assert!(b.readback > a.readback, "readbacks grow with N");
        assert!(b.shader > 10.0 * a.shader, "shader work scales with N²");
    }

    #[test]
    fn deterministic() {
        let sim = SimConfig::reduced_lj(108);
        let a = run_md(&GpuMdSimulation::geforce_7900gtx(), &sim, 2);
        let b = run_md(&GpuMdSimulation::geforce_7900gtx(), &sim, 2);
        assert_eq!(a.sim_seconds, b.sim_seconds);
        assert_eq!(a.energies.total, b.energies.total);
        assert_eq!(a.total_ops, b.total_ops);
    }

    #[test]
    fn perf_counters_are_free_and_populated() {
        let sim = SimConfig::reduced_lj(128);
        let plain = run_md(&GpuMdSimulation::geforce_7900gtx(), &sim, 2);
        let mut perf = sim_perf::PerfMonitor::new();
        let counted = run_md_perf(&GpuMdSimulation::geforce_7900gtx(), &sim, 2, &mut perf);
        assert_eq!(
            plain.sim_seconds, counted.sim_seconds,
            "observability is free"
        );
        assert_eq!(plain.energies.total, counted.energies.total);
        assert_eq!(plain.total_ops, counted.total_ops);
        let fetches = perf.find("gpu.texture.fetches").expect("registered");
        let alu = perf.find("gpu.shader.instructions").expect("registered");
        assert_eq!(
            fetches.value() + alu.value(),
            counted.total_ops as f64,
            "fetch + alu partition the retired ops"
        );
        assert_eq!(fetches.samples().len(), 3, "prime eval + one per step");
        // Both PCIe directions move one 16-byte texel per atom per eval.
        let expect_bytes = (128 * 16 * 3) as f64;
        assert_eq!(
            perf.find("gpu.pcie.bytes_to_device")
                .expect("registered")
                .value(),
            expect_bytes
        );
        assert_eq!(
            perf.find("gpu.pcie.bytes_from_device")
                .expect("registered")
                .value(),
            expect_bytes
        );
        assert_eq!(
            perf.find("gpu.readback.stall_seconds")
                .expect("registered")
                .value(),
            counted.breakdown.readback
        );
    }

    #[test]
    fn segmented_run_matches_unsegmented_run_bitwise() {
        let sim = SimConfig::reduced_lj(256);
        let runner = GpuMdSimulation::geforce_7900gtx();
        let mut whole: ParticleSystem<f32> = init::initialize(&sim);
        run_md_from(&runner, &mut whole, &sim, 10);
        let mut segmented: ParticleSystem<f32> = init::initialize(&sim);
        run_md_from(&runner, &mut segmented, &sim, 5);
        run_md_from(&runner, &mut segmented, &sim, 5);
        assert_eq!(whole.positions, segmented.positions);
        assert_eq!(whole.velocities, segmented.velocities);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_faults_leave_physics_untouched_and_slow_the_run() {
        let sim = SimConfig::reduced_lj(256);
        let clean = run_md(&GpuMdSimulation::geforce_7900gtx(), &sim, 5);
        let faulty = run_md(
            &GpuMdSimulation::geforce_7900gtx().with_fault_plan(sim_fault::FaultPlan::new(5, 0.3)),
            &sim,
            5,
        );
        assert_eq!(clean.energies.total, faulty.energies.total);
        assert_eq!(clean.total_ops, faulty.total_ops);
        assert!(faulty.faults.any());
        assert!(faulty.sim_seconds > clean.sim_seconds);
        // The GPU pipeline is serial, so the slowdown is exactly the
        // charged recovery time.
        assert!(
            (faulty.sim_seconds - clean.sim_seconds - faulty.faults.extra_seconds).abs()
                < 1e-12 * faulty.sim_seconds.max(1e-30)
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn exhaustion_degrades_instead_of_failing() {
        let sim = SimConfig::reduced_lj(108);
        let run = run_md(
            &GpuMdSimulation::geforce_7900gtx().with_fault_plan(sim_fault::FaultPlan::new(0, 1.0)),
            &sim,
            1,
        );
        assert!(run.faults.exhausted > 0, "rate 1.0 must exhaust");
        assert!(
            run.energies.total.is_finite(),
            "degraded run still completes"
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_schedule_is_reproducible_across_runs() {
        let sim = SimConfig::reduced_lj(108);
        let mk = || {
            run_md(
                &GpuMdSimulation::geforce_7900gtx()
                    .with_fault_plan(sim_fault::FaultPlan::new(42, 0.25)),
                &sim,
                3,
            )
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }

    /// Physics-once at the run level: a full memoized run is bitwise
    /// indistinguishable from the interpretive baseline — trajectory,
    /// energies, sim-seconds, retired ops.
    #[test]
    fn eval_memo_run_is_bitwise_identical_to_baseline() {
        let sim = SimConfig::reduced_lj(256);
        let memoized = GpuMdSimulation::geforce_7900gtx();
        let mut baseline = GpuMdSimulation::geforce_7900gtx();
        baseline.set_eval_memo(false);
        let mut sys_m: ParticleSystem<f32> = init::initialize(&sim);
        let mut sys_b: ParticleSystem<f32> = init::initialize(&sim);
        let m = run_md_from(&memoized, &mut sys_m, &sim, 5);
        let b = run_md_from(&baseline, &mut sys_b, &sim, 5);
        assert_eq!(sys_m.positions, sys_b.positions);
        assert_eq!(sys_m.velocities, sys_b.velocities);
        assert_eq!(m.energies.total, b.energies.total);
        assert_eq!(m.sim_seconds, b.sim_seconds);
        assert_eq!(m.total_ops, b.total_ops);
    }

    #[test]
    fn multipass_reduction_same_physics_but_slower() {
        use crate::reduction::ReductionStrategy;
        let sim = SimConfig::reduced_lj(512);
        let runner = GpuMdSimulation::geforce_7900gtx();
        let cpu = runner.run_md_with(&sim, 2, ReductionStrategy::CpuReadback);
        let gpu = runner.run_md_with(&sim, 2, ReductionStrategy::GpuMultiPass);
        // Same trajectory: the PE totals agree to f32 summation-order noise,
        // and the accelerations (hence energies) are identical.
        assert!(
            (cpu.energies.total - gpu.energies.total).abs() < 1e-3 * cpu.energies.total.abs(),
            "{} vs {}",
            cpu.energies.total,
            gpu.energies.total
        );
        // The paper's claim: the multi-pass reduction "introduces significant
        // overheads" relative to the free CPU sum.
        assert!(gpu.sim_seconds > cpu.sim_seconds);
        assert!(gpu.breakdown.gpu_reduction > 0.0);
        assert_eq!(cpu.breakdown.gpu_reduction, 0.0);
    }
}
