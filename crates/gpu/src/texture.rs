//! GPU textures: 1-D arrays of 4-component single-precision texels.
//!
//! "Typical high end cards today ... support from 8-bit integer to 32-bit
//! floating point data types, with 1, 2, or 4 component SIMD operations."
//! The MD port uses 4-component float texels exclusively: xyz in the first
//! three lanes, the fourth lane free (zero on input positions, potential
//! energy on output accelerations).

/// A 4-component float texture living in GPU memory.
#[derive(Clone, Debug, PartialEq)]
pub struct Texture {
    texels: Vec<[f32; 4]>,
}

impl Texture {
    /// Allocate a zeroed texture of `len` texels.
    pub fn new(len: usize) -> Self {
        Self {
            texels: vec![[0.0; 4]; len],
        }
    }

    pub fn from_texels(texels: Vec<[f32; 4]>) -> Self {
        Self { texels }
    }

    /// Pack xyz triples, fourth component zero.
    pub fn from_xyz(points: &[[f32; 3]]) -> Self {
        Self {
            texels: points.iter().map(|p| [p[0], p[1], p[2], 0.0]).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.texels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texels.is_empty()
    }

    /// Texture fetch (`texfetch`): the only read operation shaders get.
    #[inline(always)]
    pub fn fetch(&self, i: usize) -> [f32; 4] {
        self.texels[i]
    }

    /// Byte size for PCIe transfer costing.
    pub fn size_bytes(&self) -> usize {
        self.texels.len() * 16
    }

    /// Host-side view after readback.
    pub fn texels(&self) -> &[[f32; 4]] {
        &self.texels
    }

    pub(crate) fn texels_mut(&mut self) -> &mut [[f32; 4]] {
        &mut self.texels
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn xyz_packing_pads_fourth_lane() {
        let t = Texture::from_xyz(&[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.fetch(0), [1.0, 2.0, 3.0, 0.0]);
        assert_eq!(t.fetch(1), [4.0, 5.0, 6.0, 0.0]);
        assert_eq!(t.size_bytes(), 32);
    }

    #[test]
    fn zeroed_allocation() {
        let t = Texture::new(3);
        assert_eq!(t.fetch(2), [0.0; 4]);
        assert!(!t.is_empty());
        assert!(Texture::new(0).is_empty());
    }
}
