//! Schema validation for emitted metrics files.
//!
//! The JSON parser itself ([`parse_json`], [`JsonValue`]) lives in the shared
//! `sim-obs` layer and is re-exported here so existing `sim_perf::parse_json`
//! callers keep working; this module keeps only the `RunMetrics`-specific
//! schema validator.

pub use sim_obs::json::{parse_json, JsonValue};

fn require_number(doc: &JsonValue, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(JsonValue::as_number)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

/// Validate a serialized `RunMetrics` document against schema version
/// [`crate::SCHEMA_VERSION`]: required fields, types, non-negative values,
/// and the attribution-sums-to-total invariant.
pub fn validate_run_metrics_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let version = require_number(&doc, "schema_version")?;
    if version != f64::from(crate::SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} != supported {}",
            crate::SCHEMA_VERSION
        ));
    }
    doc.get("device")
        .and_then(JsonValue::as_str)
        .ok_or("missing or non-string field \"device\"")?;
    for key in ["n_atoms", "steps"] {
        let n = require_number(&doc, key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!(
                "field {key:?} must be a non-negative integer, got {n}"
            ));
        }
    }
    let sim_seconds = require_number(&doc, "sim_seconds")?;
    if sim_seconds < 0.0 {
        return Err(format!(
            "sim_seconds must be non-negative, got {sim_seconds}"
        ));
    }
    let attribution = doc
        .get("attribution")
        .and_then(JsonValue::as_object)
        .ok_or("missing or non-object field \"attribution\"")?;
    let mut sum = 0.0;
    for (name, v) in attribution {
        let s = v
            .as_number()
            .ok_or_else(|| format!("attribution {name:?} is not a number"))?;
        if s < 0.0 {
            return Err(format!("attribution {name:?} is negative: {s}"));
        }
        sum += s;
    }
    let tol = crate::ATTRIBUTION_REL_TOL * sim_seconds.max(f64::MIN_POSITIVE);
    if (sum - sim_seconds).abs() > tol {
        return Err(format!(
            "attribution sums to {sum} but sim_seconds is {sim_seconds}"
        ));
    }
    let counters = doc
        .get("counters")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array field \"counters\"")?;
    for (i, c) in counters.iter().enumerate() {
        c.get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("counters[{i}] missing string \"name\""))?;
        c.get("unit")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("counters[{i}] missing string \"unit\""))?;
        let v = c
            .get("value")
            .and_then(JsonValue::as_number)
            .ok_or_else(|| format!("counters[{i}] missing numeric \"value\""))?;
        if v < 0.0 {
            return Err(format!("counters[{i}] value is negative: {v}"));
        }
    }
    let derived = doc
        .get("derived")
        .and_then(JsonValue::as_object)
        .ok_or("missing or non-object field \"derived\"")?;
    for (name, v) in derived {
        v.as_number()
            .ok_or_else(|| format!("derived {name:?} is not a number"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc =
            parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\n", "d": true}}"#).expect("parses");
        assert_eq!(
            doc.get("a")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\n")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
        assert!(parse_json("NaN").is_err());
    }

    #[test]
    fn validator_demands_attribution_sum() {
        let good = r#"{
            "schema_version": 1, "device": "gpu", "n_atoms": 64, "steps": 2,
            "sim_seconds": 1.0,
            "attribution": {"compute": 0.4, "transfer": 0.6},
            "counters": [{"name": "x", "unit": "ops", "value": 3}],
            "derived": {"utilization": 0.5}
        }"#;
        validate_run_metrics_json(good).expect("valid");
        let bad = good.replace("0.6", "0.5");
        assert!(validate_run_metrics_json(&bad).is_err());
    }

    #[test]
    fn validator_demands_schema_version() {
        let doc = r#"{
            "schema_version": 2, "device": "gpu", "n_atoms": 64, "steps": 2,
            "sim_seconds": 0.0, "attribution": {}, "counters": [], "derived": {}
        }"#;
        let err = validate_run_metrics_json(doc).expect_err("wrong version");
        assert!(err.contains("schema_version"), "{err}");
    }
}
