//! Dependency-free JSON parsing, used to validate emitted metrics files.
//!
//! The container has no serde; this is a small strict recursive-descent
//! parser (no trailing commas, no comments, no NaN/Infinity) — enough to
//! check that a `RunMetrics` artifact round-trips and matches the schema.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Key-value pairs in source order (duplicates rejected at parse time).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.fail(&format!("unexpected {:?}", other as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected {lit:?}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("non-UTF8 number"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.fail(&format!("bad number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.fail(&format!("non-finite number {text:?}")));
        }
        Ok(JsonValue::Number(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.fail("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.fail("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("non-UTF8 string"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.fail("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, nothing else).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing garbage after document"));
    }
    Ok(v)
}

fn require_number(doc: &JsonValue, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(JsonValue::as_number)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

/// Validate a serialized `RunMetrics` document against schema version
/// [`crate::SCHEMA_VERSION`]: required fields, types, non-negative values,
/// and the attribution-sums-to-total invariant.
pub fn validate_run_metrics_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let version = require_number(&doc, "schema_version")?;
    if version != f64::from(crate::SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} != supported {}",
            crate::SCHEMA_VERSION
        ));
    }
    doc.get("device")
        .and_then(JsonValue::as_str)
        .ok_or("missing or non-string field \"device\"")?;
    for key in ["n_atoms", "steps"] {
        let n = require_number(&doc, key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!(
                "field {key:?} must be a non-negative integer, got {n}"
            ));
        }
    }
    let sim_seconds = require_number(&doc, "sim_seconds")?;
    if sim_seconds < 0.0 {
        return Err(format!(
            "sim_seconds must be non-negative, got {sim_seconds}"
        ));
    }
    let attribution = doc
        .get("attribution")
        .and_then(JsonValue::as_object)
        .ok_or("missing or non-object field \"attribution\"")?;
    let mut sum = 0.0;
    for (name, v) in attribution {
        let s = v
            .as_number()
            .ok_or_else(|| format!("attribution {name:?} is not a number"))?;
        if s < 0.0 {
            return Err(format!("attribution {name:?} is negative: {s}"));
        }
        sum += s;
    }
    let tol = crate::ATTRIBUTION_REL_TOL * sim_seconds.max(f64::MIN_POSITIVE);
    if (sum - sim_seconds).abs() > tol {
        return Err(format!(
            "attribution sums to {sum} but sim_seconds is {sim_seconds}"
        ));
    }
    let counters = doc
        .get("counters")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array field \"counters\"")?;
    for (i, c) in counters.iter().enumerate() {
        c.get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("counters[{i}] missing string \"name\""))?;
        c.get("unit")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("counters[{i}] missing string \"unit\""))?;
        let v = c
            .get("value")
            .and_then(JsonValue::as_number)
            .ok_or_else(|| format!("counters[{i}] missing numeric \"value\""))?;
        if v < 0.0 {
            return Err(format!("counters[{i}] value is negative: {v}"));
        }
    }
    let derived = doc
        .get("derived")
        .and_then(JsonValue::as_object)
        .ok_or("missing or non-object field \"derived\"")?;
    for (name, v) in derived {
        v.as_number()
            .ok_or_else(|| format!("derived {name:?} is not a number"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc =
            parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\n", "d": true}}"#).expect("parses");
        assert_eq!(
            doc.get("a")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\n")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(parse_json("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
        assert!(parse_json("NaN").is_err());
    }

    #[test]
    fn validator_demands_attribution_sum() {
        let good = r#"{
            "schema_version": 1, "device": "gpu", "n_atoms": 64, "steps": 2,
            "sim_seconds": 1.0,
            "attribution": {"compute": 0.4, "transfer": 0.6},
            "counters": [{"name": "x", "unit": "ops", "value": 3}],
            "derived": {"utilization": 0.5}
        }"#;
        validate_run_metrics_json(good).expect("valid");
        let bad = good.replace("0.6", "0.5");
        assert!(validate_run_metrics_json(&bad).is_err());
    }

    #[test]
    fn validator_demands_schema_version() {
        let doc = r#"{
            "schema_version": 2, "device": "gpu", "n_atoms": 64, "steps": 2,
            "sim_seconds": 0.0, "attribution": {}, "counters": [], "derived": {}
        }"#;
        let err = validate_run_metrics_json(doc).expect_err("wrong version");
        assert!(err.contains("schema_version"), "{err}");
    }
}
