//! Schema-versioned per-run metrics: attribution, counters, derived rates.

use crate::counter::PerfMonitor;
use crate::json::JsonValue;
use mdea_trace::escape_json_string;
use std::fmt::Write as _;

/// Version of the `RunMetrics` JSON schema. Bump when a field is added,
/// removed, or changes meaning; consumers must check it before diffing runs.
pub const SCHEMA_VERSION: u32 = 1;

/// Relative tolerance on `sum(attribution) == sim_seconds`. The devices
/// derive both sides from the same cost accumulators, so the only slack
/// allowed is floating-point re-association.
pub const ATTRIBUTION_REL_TOL: f64 = 1e-9;

/// Everything `perf_report` knows about one simulated run.
///
/// `attribution` is the centrepiece: a labelled partition of the run's
/// simulated seconds (compute vs DMA-wait vs mailbox vs PCIe vs memory
/// stalls) that [`validate`] requires to sum to `sim_seconds` within
/// [`ATTRIBUTION_REL_TOL`]. `counters` are the raw monotonic event counts,
/// `derived` the dimensionless or rate metrics computed from them.
///
/// [`validate`]: RunMetrics::validate
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    pub schema_version: u32,
    /// Device label, e.g. "cell-8spe", "gpu-7900gtx", "mta-2", "opteron".
    pub device: String,
    pub n_atoms: usize,
    pub steps: usize,
    /// Total simulated seconds for the run.
    pub sim_seconds: f64,
    /// Labelled partition of `sim_seconds`, in presentation order.
    pub attribution: Vec<(String, f64)>,
    /// Raw counters: `(name, value, unit)`.
    pub counters: Vec<(String, f64, String)>,
    /// Derived metrics: `(name, value)` — rates, fractions, ratios.
    pub derived: Vec<(String, f64)>,
}

impl RunMetrics {
    pub fn new(device: impl Into<String>, n_atoms: usize, steps: usize, sim_seconds: f64) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            device: device.into(),
            n_atoms,
            steps,
            sim_seconds,
            attribution: Vec::new(),
            counters: Vec::new(),
            derived: Vec::new(),
        }
    }

    /// Append one attribution bucket (seconds of simulated time).
    pub fn push_attribution(&mut self, name: impl Into<String>, seconds: f64) {
        self.attribution.push((name.into(), seconds));
    }

    /// Seconds attributed to `name` (0 if absent).
    pub fn attribution_seconds(&self, name: &str) -> f64 {
        self.attribution
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, s)| *s)
    }

    /// Fraction of total simulated time attributed to `name`.
    pub fn attribution_fraction(&self, name: &str) -> f64 {
        if self.sim_seconds == 0.0 {
            0.0
        } else {
            self.attribution_seconds(name) / self.sim_seconds
        }
    }

    /// Copy every counter's final value out of a [`PerfMonitor`].
    pub fn absorb_counters(&mut self, monitor: &PerfMonitor) {
        for c in monitor.counters() {
            self.counters
                .push((c.name.clone(), c.value(), c.unit.to_string()));
        }
    }

    /// Value of a raw counter (0 if absent).
    pub fn counter_value(&self, name: &str) -> f64 {
        self.counters
            .iter()
            .find(|(n, _, _)| n == name)
            .map_or(0.0, |(_, v, _)| *v)
    }

    pub fn push_derived(&mut self, name: impl Into<String>, value: f64) {
        self.derived.push((name.into(), value));
    }

    /// Value of a derived metric (0 if absent).
    pub fn derived_value(&self, name: &str) -> f64 {
        self.derived
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// Push the standard rate metrics: achieved vs peak op rate, utilization,
    /// and bytes moved per op. `ops` is the device's native work unit (flops,
    /// shader ops, instructions); `peak_ops_per_second` its theoretical peak.
    pub fn derive_rates(&mut self, ops: f64, peak_ops_per_second: f64, bytes_moved: f64) {
        let achieved = if self.sim_seconds > 0.0 {
            ops / self.sim_seconds
        } else {
            0.0
        };
        self.push_derived("achieved_gops_per_s", achieved / 1e9);
        self.push_derived("peak_gops_per_s", peak_ops_per_second / 1e9);
        self.push_derived(
            "utilization",
            if peak_ops_per_second > 0.0 {
                achieved / peak_ops_per_second
            } else {
                0.0
            },
        );
        self.push_derived(
            "bytes_per_op",
            if ops > 0.0 { bytes_moved / ops } else { 0.0 },
        );
    }

    /// Record host-side throughput: how fast the simulator itself executed
    /// (wall-clock), as opposed to the simulated seconds it modeled. Adds
    /// `host_wall_seconds` and `host_atom_steps_per_s` (atom·steps per
    /// wall-clock second — the figure of merit for the host-parallel
    /// execution path, DESIGN.md §12). `host_wall_seconds` must be measured
    /// by the *caller* (harness or bench): device simulators never read the
    /// host clock, so the timing always wraps the run from outside.
    pub fn record_host_throughput(&mut self, host_wall_seconds: f64) {
        let atom_steps = (self.n_atoms * self.steps.max(1)) as f64;
        self.push_derived("host_wall_seconds", host_wall_seconds);
        self.push_derived(
            "host_atom_steps_per_s",
            if host_wall_seconds > 0.0 {
                atom_steps / host_wall_seconds
            } else {
                0.0
            },
        );
    }

    /// Check the record's internal consistency. The attribution-sum check is
    /// the contract that makes `perf_report` trustworthy: if a device charges
    /// time it cannot attribute, this fails.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if !self.sim_seconds.is_finite() || self.sim_seconds < 0.0 {
            return Err(format!(
                "sim_seconds not finite/non-negative: {}",
                self.sim_seconds
            ));
        }
        let mut sum = 0.0;
        for (name, s) in &self.attribution {
            if !s.is_finite() || *s < 0.0 {
                return Err(format!("attribution {name:?} not finite/non-negative: {s}"));
            }
            sum += s;
        }
        let tol = ATTRIBUTION_REL_TOL * self.sim_seconds.max(f64::MIN_POSITIVE);
        if (sum - self.sim_seconds).abs() > tol {
            return Err(format!(
                "attribution sums to {sum} but sim_seconds is {} (|diff| {} > tol {tol})",
                self.sim_seconds,
                (sum - self.sim_seconds).abs()
            ));
        }
        for (name, v, _) in &self.counters {
            if !v.is_finite() || *v < 0.0 {
                return Err(format!("counter {name:?} not finite/non-negative: {v}"));
            }
        }
        for (name, v) in &self.derived {
            if !v.is_finite() {
                return Err(format!("derived {name:?} not finite: {v}"));
            }
        }
        Ok(())
    }

    /// Render as a pretty-printed JSON object (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(
            out,
            "  \"device\": \"{}\",",
            escape_json_string(&self.device)
        );
        let _ = writeln!(out, "  \"n_atoms\": {},", self.n_atoms);
        let _ = writeln!(out, "  \"steps\": {},", self.steps);
        let _ = writeln!(out, "  \"sim_seconds\": {},", json_f64(self.sim_seconds));
        out.push_str("  \"attribution\": {\n");
        for (i, (name, s)) in self.attribution.iter().enumerate() {
            let comma = if i + 1 < self.attribution.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{}\": {}{comma}",
                escape_json_string(name),
                json_f64(*s)
            );
        }
        out.push_str("  },\n  \"counters\": [\n");
        for (i, (name, v, unit)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"value\": {}}}{comma}",
                escape_json_string(name),
                escape_json_string(unit),
                json_f64(*v)
            );
        }
        out.push_str("  ],\n  \"derived\": {\n");
        for (i, (name, v)) in self.derived.iter().enumerate() {
            let comma = if i + 1 < self.derived.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {}{comma}",
                escape_json_string(name),
                json_f64(*v)
            );
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse a record back from its [`RunMetrics::to_json`] rendering.
    ///
    /// Every number survives bit-exactly: `to_json` renders floats with
    /// Rust's shortest-round-trip `Display` and this parses them with
    /// `str::parse::<f64>`, so a record cached on disk equals the freshly
    /// computed one — the property the sweep result cache leans on.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_value(&crate::json::parse_json(text)?)
    }

    /// [`RunMetrics::from_json`] over an already-parsed [`JsonValue`] (for
    /// callers that embed the record inside a larger document).
    pub fn from_json_value(doc: &JsonValue) -> Result<Self, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_number)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let device = doc
            .get("device")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing string field \"device\"".to_string())?;
        let mut m = RunMetrics::new(
            device,
            num("n_atoms")? as usize,
            num("steps")? as usize,
            num("sim_seconds")?,
        );
        m.schema_version = num("schema_version")? as u32;
        let attribution = doc
            .get("attribution")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| "missing object field \"attribution\"".to_string())?;
        for (name, v) in attribution {
            let s = v
                .as_number()
                .ok_or_else(|| format!("attribution {name:?} is not a number"))?;
            m.push_attribution(name.clone(), s);
        }
        let counters = doc
            .get("counters")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "missing array field \"counters\"".to_string())?;
        for c in counters {
            let field = |key: &str| {
                c.get(key)
                    .ok_or_else(|| format!("counter entry missing {key:?}"))
            };
            let name = field("name")?
                .as_str()
                .ok_or_else(|| "counter \"name\" is not a string".to_string())?;
            let unit = field("unit")?
                .as_str()
                .ok_or_else(|| "counter \"unit\" is not a string".to_string())?;
            let value = field("value")?
                .as_number()
                .ok_or_else(|| format!("counter {name:?} value is not a number"))?;
            m.counters.push((name.to_string(), value, unit.to_string()));
        }
        let derived = doc
            .get("derived")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| "missing object field \"derived\"".to_string())?;
        for (name, v) in derived {
            let value = v
                .as_number()
                .ok_or_else(|| format!("derived {name:?} is not a number"))?;
            m.push_derived(name.clone(), value);
        }
        Ok(m)
    }
}

/// Format an `f64` as a JSON number. Rust's `Display` for finite floats is
/// shortest-round-trip, and a bare integer form ("3") is still a valid JSON
/// number, so no fixup is needed beyond rejecting non-finite values.
fn json_f64(v: f64) -> String {
    assert!(v.is_finite(), "JSON numbers must be finite, got {v}");
    format!("{v}")
}

/// Human-readable engineering formatting for counter values ("3.20 G",
/// "14.1 k"). Unit-agnostic; the caller appends the unit label.
pub fn format_quantity(v: f64) -> String {
    let abs = v.abs();
    if abs >= 1e12 {
        format!("{:.2} T", v / 1e12)
    } else if abs >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if abs >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        let mut m = RunMetrics::new("cell-8spe", 2048, 10, 1.0);
        m.push_attribution("compute", 0.7);
        m.push_attribution("dma_wait", 0.2);
        m.push_attribution("mailbox", 0.1);
        m.counters
            .push(("cell.dma.bytes".to_string(), 4096.0, "bytes".to_string()));
        m.derive_rates(2e9, 25.6e9, 4096.0);
        m
    }

    #[test]
    fn valid_record_passes() {
        let m = sample();
        m.validate().expect("valid");
        assert!((m.attribution_fraction("compute") - 0.7).abs() < 1e-12);
        assert_eq!(m.attribution_seconds("nope"), 0.0);
        assert!((m.derived_value("achieved_gops_per_s") - 2.0).abs() < 1e-12);
        assert!((m.derived_value("utilization") - 2.0 / 25.6).abs() < 1e-12);
    }

    #[test]
    fn attribution_gap_detected() {
        let mut m = sample();
        m.attribution[0].1 = 0.6; // lose 0.1 s
        let err = m.validate().expect_err("gap");
        assert!(err.contains("attribution sums"), "{err}");
    }

    #[test]
    fn tiny_float_slack_tolerated() {
        let mut m = RunMetrics::new("x", 1, 1, 0.3);
        m.push_attribution("a", 0.1);
        m.push_attribution("b", 0.2); // 0.1 + 0.2 != 0.3 exactly in binary
        m.validate().expect("within 1e-9 relative");
    }

    #[test]
    fn json_is_valid_and_versioned() {
        let m = sample();
        let json = m.to_json();
        crate::json::validate_run_metrics_json(&json).expect("schema-valid");
        assert!(json.contains("\"schema_version\": 1"));
    }

    #[test]
    fn wrong_schema_version_rejected() {
        let mut m = sample();
        m.schema_version = 99;
        assert!(m.validate().is_err());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut m = sample();
        // Awkward values: shortest-round-trip rendering must survive both
        // directions bit for bit.
        m.push_derived("third", 1.0 / 3.0);
        m.push_derived("tiny", 5e-324);
        m.push_derived("huge", 1.7976931348623157e308);
        let back = RunMetrics::from_json(&m.to_json()).expect("parses");
        assert_eq!(back, m);
        // And the rendering is a fixed point: serialize → parse → serialize
        // yields the identical byte string.
        assert_eq!(back.to_json(), m.to_json());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(RunMetrics::from_json("{").is_err());
        assert!(RunMetrics::from_json("{}").is_err());
        let err = RunMetrics::from_json("{\"device\": \"x\"}").expect_err("incomplete");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn host_throughput_derives_atom_steps_per_second() {
        let mut m = sample(); // 2048 atoms, 10 steps
        m.record_host_throughput(0.5);
        assert_eq!(m.derived_value("host_wall_seconds"), 0.5);
        assert_eq!(
            m.derived_value("host_atom_steps_per_s"),
            2048.0 * 10.0 / 0.5
        );
        m.validate().expect("still a valid record");
        // Degenerate wall time must not poison the record with NaN/inf.
        let mut z = sample();
        z.record_host_throughput(0.0);
        assert_eq!(z.derived_value("host_atom_steps_per_s"), 0.0);
        z.validate().expect("zero wall time stays finite");
    }

    #[test]
    fn quantity_formatting() {
        assert_eq!(format_quantity(15.6e9), "15.60 G");
        assert_eq!(format_quantity(2048.0), "2.05 k");
        assert_eq!(format_quantity(0.5), "0.50");
    }
}
