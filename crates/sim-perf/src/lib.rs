//! Hardware-counter-style observability for the device simulators.
//!
//! The device models *charge* simulated time (DMA latencies, PCIe transfers,
//! cache-miss cycles, stream-issue slots) but, before this crate, could not
//! *attribute* it. `sim-perf` adds the missing layer, modelled on the
//! performance-counter units of the paper's four machines:
//!
//! - a [`PerfMonitor`] of named, monotonically non-decreasing counters that a
//!   device updates as it runs (DMA bytes, texture fetches, phantom cycles,
//!   cache misses, ...), sampled into a time series along simulated time and
//!   exportable as Chrome `"C"` counter events on an `mdea_trace::Tracer` so
//!   Perfetto renders counter lanes aligned with the span timeline;
//! - a schema-versioned [`RunMetrics`] record: raw counters plus derived
//!   metrics (achieved vs peak rate, utilization, bytes/flop) and a per-run
//!   **time attribution** (compute vs DMA-wait vs mailbox vs PCIe vs memory
//!   stalls) that must sum to the run's total simulated seconds;
//! - a dependency-free JSON writer/validator for the `results/metrics/`
//!   artifacts the `perf_report` harness binary emits.
//!
//! The load-bearing invariant is that observability is **free**: nothing in
//! this crate charges simulated time, and a device run with counters enabled
//! is bitwise-identical (trajectory *and* simulated seconds) to the same run
//! with counters disabled. The sim-vet `observability-purity` rule statically
//! denies calls into the cost-charging APIs from this crate, and
//! `tests/perf_observability.rs` asserts the bitwise property at paper scale.

mod counter;
mod json;
mod metrics;

pub use counter::{CounterHandle, CounterSeries, PerfMonitor};
pub use json::{parse_json, validate_run_metrics_json, JsonValue};
pub use metrics::{format_quantity, RunMetrics, ATTRIBUTION_REL_TOL, SCHEMA_VERSION};
