//! Monotonic named counters with time-series sampling.

use mdea_trace::{TraceTrack, Tracer};

/// Opaque index of a registered counter (cheap to copy, valid only for the
/// [`PerfMonitor`] that issued it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// One counter: a monotonically non-decreasing value plus the samples taken
/// along simulated time.
#[derive(Clone, Debug)]
pub struct CounterSeries {
    pub name: String,
    /// Unit label for reports ("bytes", "cycles", "ops", ...).
    pub unit: &'static str,
    value: f64,
    /// `(simulated seconds, cumulative value)` in sampling order.
    samples: Vec<(f64, f64)>,
}

impl CounterSeries {
    /// Current cumulative value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Samples taken so far, as `(simulated seconds, cumulative value)`.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }
}

/// A registry of monotonic counters, updated by a device model as it runs.
///
/// The monitor is a passive observer: it holds no clock and charges no
/// simulated time. Devices thread an `Option<&mut PerfMonitor>` through their
/// run loops (mirroring the existing tracer threading) and call [`add`] at
/// the points where costs are charged; the arithmetic of the run itself is
/// untouched, which is what keeps counters-on runs bitwise-identical to
/// counters-off runs.
///
/// [`add`]: PerfMonitor::add
#[derive(Clone, Debug, Default)]
pub struct PerfMonitor {
    counters: Vec<CounterSeries>,
}

impl PerfMonitor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter by name. Registration is idempotent:
    /// re-registering an existing name returns the original handle, so a
    /// device loop may register inside its hot path without bookkeeping.
    pub fn register(&mut self, name: impl Into<String>, unit: &'static str) -> CounterHandle {
        let name = name.into();
        if let Some(i) = self.counters.iter().position(|c| c.name == name) {
            assert_eq!(
                self.counters[i].unit, unit,
                "counter {name:?} re-registered with a different unit"
            );
            return CounterHandle(i);
        }
        self.counters.push(CounterSeries {
            name,
            unit,
            value: 0.0,
            samples: Vec::new(),
        });
        CounterHandle(self.counters.len() - 1)
    }

    /// Increment a counter. Deltas must be finite and non-negative — counters
    /// model hardware event counts, which only ever accumulate.
    pub fn add(&mut self, handle: CounterHandle, delta: f64) {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "counter delta must be finite and non-negative, got {delta}"
        );
        self.counters[handle.0].value += delta;
    }

    /// Increment a counter by an integer event count.
    pub fn add_u64(&mut self, handle: CounterHandle, delta: u64) {
        // Lossless for any event count a run can realistically produce; the
        // paper workloads stay far below 2^53 events per counter.
        self.add(handle, delta as f64);
    }

    /// Raise a counter to a new cumulative total. Convenient when the device
    /// already keeps a running total (cache stats, cycle accumulators): the
    /// monitor mirrors it instead of tracking deltas. The total must not be
    /// below the counter's current value — counters never run backwards.
    pub fn record_total(&mut self, handle: CounterHandle, total: f64) {
        let current = self.counters[handle.0].value;
        assert!(
            total.is_finite() && total >= current,
            "counter total must be finite and non-decreasing ({current} -> {total})"
        );
        self.counters[handle.0].value = total;
    }

    /// Current cumulative value of a counter.
    pub fn value(&self, handle: CounterHandle) -> f64 {
        self.counters[handle.0].value
    }

    /// Record one sample of *every* counter at simulated time `t_s`.
    /// Sample times must be non-decreasing within a run.
    pub fn sample_all(&mut self, t_s: f64) {
        assert!(
            t_s.is_finite() && t_s >= 0.0,
            "sample time must be finite and non-negative, got {t_s}"
        );
        for c in &mut self.counters {
            if let Some(&(last, _)) = c.samples.last() {
                assert!(t_s >= last, "sample times must be non-decreasing");
            }
            c.samples.push((t_s, c.value));
        }
    }

    /// All registered counters, in registration order.
    pub fn counters(&self) -> &[CounterSeries] {
        &self.counters
    }

    /// Look up a counter by name.
    pub fn find(&self, name: &str) -> Option<&CounterSeries> {
        self.counters.iter().find(|c| c.name == name)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Export every sampled point as a Chrome `"C"` counter event on `track`.
    /// Counters with no samples get a single point carrying their final value
    /// at t = 0 so they still show up as a lane in Perfetto.
    pub fn export_to_tracer(&self, tracer: &mut Tracer, track: TraceTrack) {
        for c in &self.counters {
            if c.samples.is_empty() {
                tracer.counter(track, c.name.clone(), "perf", 0.0, c.value);
                continue;
            }
            for &(t_s, value) in &c.samples {
                tracer.counter(track, c.name.clone(), "perf", t_s, value);
            }
        }
    }

    /// Export every counter into a run ledger under `source`: all sampled
    /// points, plus one final-value event at `end_rel_s` (relative to the
    /// ledger's sim offset) so the running total is always recoverable from
    /// the last event.
    pub fn export_to_ledger(&self, ledger: &mut sim_obs::RunLedger, source: &str, end_rel_s: f64) {
        for c in &self.counters {
            for &(t_s, value) in &c.samples {
                ledger.counter(source, &c.name, t_s, value, c.unit);
            }
            ledger.counter(source, &c.name, end_rel_s, c.value, c.unit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut m = PerfMonitor::new();
        let a = m.register("dma.bytes", "bytes");
        let b = m.register("dma.bytes", "bytes");
        assert_eq!(a, b);
        assert_eq!(m.counters().len(), 1);
        let c = m.register("mailbox.round_trips", "events");
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "different unit")]
    fn unit_mismatch_rejected() {
        let mut m = PerfMonitor::new();
        m.register("x", "bytes");
        m.register("x", "cycles");
    }

    #[test]
    fn accumulates_and_samples() {
        let mut m = PerfMonitor::new();
        let h = m.register("fetches", "ops");
        m.add_u64(h, 10);
        m.sample_all(1e-6);
        m.add(h, 5.0);
        m.sample_all(2e-6);
        assert_eq!(m.value(h), 15.0);
        let series = m.find("fetches").expect("registered");
        assert_eq!(series.samples(), &[(1e-6, 10.0), (2e-6, 15.0)]);
    }

    #[test]
    fn record_total_mirrors_running_accumulators() {
        let mut m = PerfMonitor::new();
        let h = m.register("cycles", "cycles");
        m.record_total(h, 100.0);
        m.record_total(h, 100.0); // no progress is fine
        m.record_total(h, 250.0);
        assert_eq!(m.value(h), 250.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn record_total_rejects_regression() {
        let mut m = PerfMonitor::new();
        let h = m.register("cycles", "cycles");
        m.record_total(h, 100.0);
        m.record_total(h, 99.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delta_rejected() {
        let mut m = PerfMonitor::new();
        let h = m.register("x", "ops");
        m.add(h, -1.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_going_backwards_rejected() {
        let mut m = PerfMonitor::new();
        m.register("x", "ops");
        m.sample_all(2e-6);
        m.sample_all(1e-6);
    }

    #[test]
    fn exports_counter_events() {
        let mut m = PerfMonitor::new();
        let h = m.register("pcie.bytes", "bytes");
        m.add(h, 4096.0);
        m.sample_all(1e-3);
        m.register("unsampled", "ops");
        let mut t = Tracer::new();
        // Re-export after registering the second counter so it takes the
        // no-samples path.
        m.export_to_tracer(&mut t, TraceTrack(90));
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("pcie.bytes"), "{json}");
        assert!(json.contains("unsampled"), "{json}");
    }
}
