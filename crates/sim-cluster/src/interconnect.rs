//! The interconnect cost model: what the fabric between nodes charges.
//!
//! Like every other cost model in the workspace (DMA, PCIe, DRAM), the
//! interconnect charges *simulated* seconds and never touches data. The
//! numbers default to a 2006-era InfiniBand SDR 4x fabric — the class of
//! interconnect the contemporary cluster-MD literature (Trott et al.,
//! PAPERS.md) reports — but every knob is public so sweeps can model
//! anything from GigE to a backplane.

/// Per-link timing and payload constants of the simulated fabric.
///
/// All fields feed the cluster half of `ClusterKind::cache_token`; changing
/// any of them must invalidate cached cluster sweep points (the
/// `cache-token` lint enforces this).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectModel {
    /// One-way small-message latency per message, seconds.
    pub latency_s: f64,
    /// Sustained point-to-point bandwidth, bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Wire bytes per remote atom in a halo exchange (positions only:
    /// 3 × f64 = 24 bytes — velocities stay node-local between reduces).
    pub halo_bytes_per_atom: f64,
    /// Payload of one all-reduce hop (partial energy sums + a checksum).
    pub allreduce_payload_bytes: f64,
    /// Wire bytes per atom when a whole domain migrates after a node loss
    /// (full dynamic state: positions + velocities + accelerations,
    /// 3 × 24 bytes, the MDCP1 payload of `encode_domain`).
    pub migration_bytes_per_atom: f64,
}

impl InterconnectModel {
    /// The 2006 reference fabric: InfiniBand SDR 4x (~5 µs MPI latency,
    /// ~1 GB/s sustained), MDCP1 payload sizes.
    pub fn paper_2006() -> Self {
        Self {
            latency_s: 5.0e-6,
            bandwidth_bytes_per_s: 1.0e9,
            halo_bytes_per_atom: 24.0,
            allreduce_payload_bytes: 32.0,
            migration_bytes_per_atom: 72.0,
        }
    }

    /// Seconds one message of `bytes` occupies the link.
    pub fn message_s(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bandwidth_bytes_per_s
    }

    /// Seconds one node spends per step gathering its remote halo: the
    /// all-pairs kernel needs every remote position, so a node with
    /// `local_atoms` of `total_atoms` receives `total - local` atoms from
    /// `peers` peer messages.
    pub fn halo_exchange_s(&self, local_atoms: usize, total_atoms: usize, peers: usize) -> f64 {
        if peers == 0 || total_atoms <= local_atoms {
            return 0.0;
        }
        let remote = (total_atoms - local_atoms) as f64 * self.halo_bytes_per_atom;
        peers as f64 * self.latency_s + remote / self.bandwidth_bytes_per_s
    }

    /// Seconds one recursive-doubling all-reduce over `nodes` ranks takes
    /// (energy partials after every step): ceil(log2 n) hops, each a
    /// latency plus the payload.
    pub fn allreduce_s(&self, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let hops = usize::BITS - (nodes - 1).leading_zeros();
        f64::from(hops) * self.message_s(self.allreduce_payload_bytes)
    }

    /// Seconds to migrate a dead node's `atoms`-atom domain from the last
    /// checkpoint to its new owner.
    pub fn migration_s(&self, atoms: usize) -> f64 {
        self.message_s(atoms as f64 * self.migration_bytes_per_atom)
    }
}

/// Membership and recovery policy of the cluster, separate from the fabric
/// timing so sweeps can vary them independently.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterPolicy {
    /// Spare nodes provisioned at start; a dead node's domain goes to a
    /// spare first, then to the least-loaded survivor.
    pub spares: usize,
    /// Resends allowed per halo message before the exchange is declared
    /// failed (attempts = resends + 1).
    pub max_halo_resends: u32,
    /// A node whose segment time would exceed this multiple of the nominal
    /// budget is expelled by the slow-node watchdog.
    pub slow_node_factor: f64,
}

impl ClusterPolicy {
    /// One warm spare, the sim-fault default retry budget, and a generous
    /// straggler tolerance.
    pub fn default_policy() -> Self {
        Self {
            spares: 1,
            max_halo_resends: sim_fault::DEFAULT_MAX_RETRIES,
            slow_node_factor: 32.0,
        }
    }
}

#[cfg(test)]
// Bitwise f64 equality is the determinism invariant under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn halo_cost_scales_with_remote_atoms_and_peers() {
        let net = InterconnectModel::paper_2006();
        let one = net.halo_exchange_s(512, 2048, 3);
        assert!(one > 0.0);
        // More local atoms → fewer remote bytes → cheaper exchange.
        assert!(net.halo_exchange_s(1024, 2048, 3) < one);
        // Single node: nothing to exchange.
        assert_eq!(net.halo_exchange_s(2048, 2048, 0), 0.0);
        // Latency term counts per peer message (subtraction re-rounds, so
        // compare to within one ulp-scale epsilon rather than bitwise).
        let few = net.halo_exchange_s(512, 2048, 1);
        assert!(((one - few) - 2.0 * net.latency_s).abs() < 1e-18);
    }

    #[test]
    fn allreduce_is_logarithmic_in_nodes() {
        let net = InterconnectModel::paper_2006();
        assert_eq!(net.allreduce_s(1), 0.0);
        let two = net.allreduce_s(2);
        assert_eq!(two, net.message_s(net.allreduce_payload_bytes));
        assert_eq!(net.allreduce_s(4), 2.0 * two);
        assert_eq!(net.allreduce_s(8), 3.0 * two);
        // Non-power-of-two rounds the hop count up.
        assert_eq!(net.allreduce_s(5), 3.0 * two);
    }

    #[test]
    fn migration_moves_full_state() {
        let net = InterconnectModel::paper_2006();
        let s = net.migration_s(512);
        assert_eq!(
            s,
            net.latency_s + 512.0 * net.migration_bytes_per_atom / net.bandwidth_bytes_per_s
        );
        assert!(net.migration_s(1024) > s);
    }

    #[test]
    fn policy_defaults_are_sane() {
        let p = ClusterPolicy::default_policy();
        assert_eq!(p.spares, 1);
        assert_eq!(p.max_halo_resends, sim_fault::DEFAULT_MAX_RETRIES);
        assert!(p.slow_node_factor > 1.0);
    }
}
