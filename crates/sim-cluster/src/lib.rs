//! Multi-node cluster simulation over the unified device API (DESIGN.md §14).
//!
//! The paper benchmarks one device at a time; real MD campaigns run on
//! clusters of them, where the dominant effects are interconnect overhead
//! (halo exchange + all-reduce) and node failure. This crate models both
//! without giving up the workspace's core invariant: **physics is
//! bit-identical to a single-device run**, at any node count, any host
//! thread count, and under any recoverable fault history. Faults and
//! decomposition cost *simulated* seconds only.
//!
//! Two layers:
//!
//! - [`InterconnectModel`] / [`ClusterPolicy`] — the fabric cost model and
//!   the membership/recovery policy, plain structs a sweep can vary.
//! - [`ClusterMd`] — an [`md_core::device::MdDevice`] built from per-node
//!   `MdDevice`s under slab domain decomposition, with node-granularity
//!   fault injection ([`sim_fault::FaultKind::CLUSTER`]) and
//!   checkpoint-based domain migration. Because it *is* an `MdDevice`, the
//!   harness supervisor's checkpoint/restore/retry machinery supervises a
//!   whole cluster exactly like one machine.
//!
//! The harness crate adds the roster integration (`ClusterKind`) and the
//! `ClusterSupervisor` recovery reporting on top.

pub mod engine;
pub mod interconnect;

pub use engine::{ClusterMd, NodeEvent};
pub use interconnect::{ClusterPolicy, InterconnectModel};
