//! The cluster engine: an [`MdDevice`] made of [`MdDevice`]s.
//!
//! [`ClusterMd`] owns one device per node plus optional warm spares,
//! partitions the box into contiguous slab domains ([`slab_domains`] — the
//! lattice fills `ix`-major, so index slabs are spatial slabs along x), and
//! charges the interconnect cost model for the halo exchange every step
//! needs and the all-reduce that closes it.
//!
//! **Bit-identity by construction.** Every node integrates the same
//! equations over the same atoms, so the cluster computes the segment's
//! physics once — on the first alive node's device, from the shared
//! checkpoint — and the decomposition shapes only the *simulated* timeline:
//! per-node compute is the physics time scaled by the node's atom share
//! (the same atom-slice scaling the Cell SPE model uses), halo and
//! all-reduce costs come from [`InterconnectModel`], and recovery work is
//! charged in simulated seconds. Final positions, velocities, and energies
//! are therefore bitwise-identical to a single-device run at any node
//! count, any thread count, and under any recoverable fault history.
//!
//! **Node-granularity faults.** A [`FaultPlan`] armed on the cluster drives
//! the [`FaultKind::CLUSTER`] sites: node crashes and link partitions are
//! evaluated at segment boundaries and surface as [`DeviceError::Failed`]
//! (the harness supervisor rolls back, re-salts, and retries — exactly the
//! checkpoint/restore machinery PR 2 built); halo drops and corruptions are
//! per-step per-node with bounded resends charged to the timeline; a
//! slow-node watchdog expels stragglers. A crashed node stays dead: the
//! next attempt's [`MdDevice::resalt`] runs the membership repair that
//! migrates its slabs to a re-provisioned spare or the least-loaded
//! survivor, charging the migration wire cost into the next accepted
//! segment.

use crate::interconnect::{ClusterPolicy, InterconnectModel};
use md_core::device::{slab_domains, DeviceError, DeviceRun, DomainRegion, MdDevice, RunOptions};
use md_core::parallel::map_indexed;
use md_core::params::SimConfig;
use sim_fault::{FaultKind, FaultPlan, FaultSession, FaultSite, FaultStats};

/// One cluster membership change or node-level fault, in occurrence order.
/// The harness supervisor folds these into its `RecoveryReport`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeEvent {
    /// A node died at the segment boundary at `step`.
    Killed {
        node: usize,
        step: u64,
        cause: String,
    },
    /// The interconnect isolated a node for one attempt (transient).
    Partitioned { node: usize, step: u64 },
    /// The slow-node watchdog expelled an attempt because of a straggler.
    SlowNode { node: usize, step: u64 },
    /// A warm spare joined the membership as rank `node`.
    Reprovisioned { node: usize, step: u64 },
    /// A dead node's slabs moved to `to` (`atoms` atoms over the wire).
    Migrated {
        from: usize,
        to: usize,
        atoms: usize,
        step: u64,
    },
}

/// A scripted, deterministic node kill: fires once, at the first segment
/// whose step range contains `at_step`. This is the CI demo's switch — no
/// probability involved.
#[derive(Clone, Copy, Debug)]
struct KillSwitch {
    node: usize,
    at_step: u64,
    fired: bool,
}

/// One member node: its device, and whether it is still alive. Slab
/// ownership lives in [`ClusterMd::owner`] so a membership change is one
/// index rewrite, not a data migration.
struct Node {
    device: Box<dyn MdDevice>,
    alive: bool,
}

/// A simulated cluster of identical devices under slab domain decomposition.
///
/// Implements [`MdDevice`], so the harness supervisor and the sweep engine
/// drive it exactly like a single machine; `run` is one supervisor segment.
pub struct ClusterMd {
    nodes: Vec<Node>,
    spares: Vec<Box<dyn MdDevice>>,
    net: InterconnectModel,
    policy: ClusterPolicy,
    /// Slab count, fixed at the initial node count: migrations reassign
    /// `owner`, never re-cut the box.
    n_slabs: usize,
    /// `owner[slab] = rank` of the node currently integrating that slab.
    owner: Vec<usize>,
    inner_label: String,
    per_node_peak: f64,
    base_plan: FaultPlan,
    salt: u64,
    kills: Vec<KillSwitch>,
    events: Vec<NodeEvent>,
    /// Migration wire seconds/bytes accrued by membership repairs, charged
    /// into the next *accepted* segment (faults cost simulated time only).
    pending_recovery_s: f64,
    pending_recovery_bytes: f64,
    pending_migrations: u64,
    migrations_total: u64,
    /// Per-slab FNV-1a digests of the last segment's closing halo payload
    /// (order-preserving parallel map, serial fold into `halo_digest`).
    last_halo_digests: Vec<u64>,
    halo_digest: u64,
}

impl ClusterMd {
    /// A cluster of `nodes` members plus `spares` warm spares. All devices
    /// should be identically configured (same `DeviceKind`): determinism
    /// then guarantees any member computes the same bits, which is what
    /// makes migration physics-transparent.
    pub fn new(
        nodes: Vec<Box<dyn MdDevice>>,
        spares: Vec<Box<dyn MdDevice>>,
        net: InterconnectModel,
        policy: ClusterPolicy,
    ) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        let inner_label = nodes[0].label();
        let per_node_peak = nodes[0].peak_ops_per_second();
        let n_slabs = nodes.len();
        Self {
            nodes: nodes
                .into_iter()
                .map(|device| Node {
                    device,
                    alive: true,
                })
                .collect(),
            spares,
            net,
            policy,
            n_slabs,
            owner: (0..n_slabs).collect(),
            inner_label,
            per_node_peak,
            base_plan: FaultPlan::disabled(),
            salt: 0,
            kills: Vec::new(),
            events: Vec::new(),
            pending_recovery_s: 0.0,
            pending_recovery_bytes: 0.0,
            pending_migrations: 0,
            migrations_total: 0,
            last_halo_digests: Vec::new(),
            halo_digest: 0,
        }
    }

    /// Arm the node-granularity fault schedule ([`FaultKind::CLUSTER`]
    /// sites). Unlike device-level plans this needs no feature gate: the
    /// whole mechanism lives in the cluster model.
    #[must_use]
    pub fn with_node_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.base_plan = plan;
        self
    }

    /// Script a deterministic kill: `node` dies at the boundary of the
    /// first segment whose step range contains `at_step`. Fires once.
    pub fn kill_node_at_step(&mut self, node: usize, at_step: u64) {
        self.kills.push(KillSwitch {
            node,
            at_step,
            fired: false,
        });
    }

    /// Membership/fault log since construction, in occurrence order.
    pub fn events(&self) -> &[NodeEvent] {
        &self.events
    }

    /// Members currently alive (spares joined count, dead nodes don't).
    pub fn alive_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Member slots ever provisioned (initial nodes + joined spares).
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Warm spares still on the bench.
    pub fn spares_left(&self) -> usize {
        self.spares.len()
    }

    /// Domain migrations performed over the cluster's lifetime.
    pub fn migrations(&self) -> u64 {
        self.migrations_total
    }

    /// Per-slab FNV-1a digests of the last accepted segment's closing halo
    /// payload, and their serial fold. Equal state implies equal digests,
    /// so these pin the halo-validation path in tests.
    pub fn halo_digests(&self) -> (&[u64], u64) {
        (&self.last_halo_digests, self.halo_digest)
    }

    /// Ranks alive right now, ascending.
    fn alive_ranks(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&r| self.nodes[r].alive)
            .collect()
    }

    /// Slabs currently owned by `rank` under the `n`-atom cut.
    fn owned(&self, rank: usize, slabs: &[DomainRegion]) -> Vec<DomainRegion> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == rank)
            .map(|(i, _)| slabs[i])
            .collect()
    }

    /// Atoms currently owned by `rank` under the `n`-atom cut.
    fn owned_atoms(&self, rank: usize, slabs: &[DomainRegion]) -> usize {
        self.owned(rank, slabs).iter().map(|d| d.len).sum()
    }

    /// Membership repair: every slab owned by a dead rank moves to a
    /// re-provisioned spare (preferred) or the least-loaded survivor. Runs
    /// at segment entry, i.e. "from the last MDCP1 checkpoint": the
    /// supervisor already rolled the state back, so handing the slab to a
    /// new owner is a pure ownership rewrite plus wire cost.
    fn repair_membership(&mut self, slabs: &[DomainRegion], step: u64) {
        while let Some(dead_rank) = self.owner.iter().copied().find(|&o| !self.nodes[o].alive) {
            let moved_atoms = self.owned_atoms(dead_rank, slabs);
            let target = if let Some(spare) = self.spares.pop() {
                self.nodes.push(Node {
                    device: spare,
                    alive: true,
                });
                let rank = self.nodes.len() - 1;
                self.events
                    .push(NodeEvent::Reprovisioned { node: rank, step });
                Some(rank)
            } else {
                // Least-loaded survivor, ties to the lowest rank.
                self.alive_ranks()
                    .into_iter()
                    .min_by_key(|&r| (self.owned_atoms(r, slabs), r))
            };
            let Some(target) = target else {
                // No survivors: leave ownership dangling; `run` reports the
                // dead cluster and the supervisor degrades to the reference.
                break;
            };
            for o in &mut self.owner {
                if *o == dead_rank {
                    *o = target;
                }
            }
            self.events.push(NodeEvent::Migrated {
                from: dead_rank,
                to: target,
                atoms: moved_atoms,
                step,
            });
            self.pending_recovery_s += self.net.migration_s(moved_atoms);
            self.pending_recovery_bytes += moved_atoms as f64 * self.net.migration_bytes_per_atom;
            self.pending_migrations += 1;
            self.migrations_total += 1;
        }
    }

    /// Evaluate the segment-boundary fault sites (scripted kills, node
    /// crashes, link partitions, slow nodes) for the attempt covering steps
    /// `[step, step + steps)`. `Err` is the failure message the supervisor
    /// logs.
    fn segment_boundary_faults(
        &mut self,
        plan: &FaultPlan,
        step: u64,
        steps: usize,
    ) -> Result<(), String> {
        // Scripted kills fire first and exactly once: at the boundary of
        // the first segment whose step range reaches the target step.
        let mut killed: Vec<usize> = Vec::new();
        for k in &mut self.kills {
            if !k.fired
                && k.node < self.nodes.len()
                && self.nodes[k.node].alive
                && k.at_step < step + steps as u64
            {
                k.fired = true;
                self.nodes[k.node].alive = false;
                killed.push(k.node);
            }
        }
        for &node in &killed {
            self.events.push(NodeEvent::Killed {
                node,
                step,
                cause: "scripted kill".to_string(),
            });
        }
        // Seeded crashes: permanent, handled by migration on retry.
        for rank in self.alive_ranks() {
            let site = FaultSite::new(FaultKind::NodeCrash, step, rank as u32, 0);
            if plan.faults_at(site, 0) {
                self.nodes[rank].alive = false;
                self.events.push(NodeEvent::Killed {
                    node: rank,
                    step,
                    cause: "node crash".to_string(),
                });
                killed.push(rank);
            }
        }
        if !killed.is_empty() {
            return Err(format!(
                "node(s) {killed:?} crashed at segment boundary (step {step})"
            ));
        }
        // Transient faults: fail the attempt, heal on the re-salted retry.
        for rank in self.alive_ranks() {
            let site = FaultSite::new(FaultKind::LinkPartition, step, rank as u32, 0);
            if plan.faults_at(site, 0) {
                self.events
                    .push(NodeEvent::Partitioned { node: rank, step });
                return Err(format!(
                    "interconnect partition isolated node {rank} (step {step})"
                ));
            }
            let site = FaultSite::new(FaultKind::NodeSlow, step, rank as u32, 0);
            if plan.faults_at(site, 0) {
                self.events.push(NodeEvent::SlowNode { node: rank, step });
                return Err(format!(
                    "slow-node watchdog: node {rank} exceeded {}x its segment budget (step {step})",
                    self.policy.slow_node_factor
                ));
            }
        }
        Ok(())
    }
}

impl MdDevice for ClusterMd {
    fn label(&self) -> String {
        format!("cluster-{}x-{}", self.n_slabs, self.inner_label)
    }

    fn peak_ops_per_second(&self) -> f64 {
        self.n_slabs as f64 * self.per_node_peak
    }

    /// Supervisor retry hook: adopt the new fault-schedule salt, forward it
    /// to every member device (device-level schedules re-arm too), and run
    /// the membership repair for nodes that died on the previous attempt.
    fn resalt(&mut self, salt: u64) {
        self.salt = salt;
        for node in &mut self.nodes {
            node.device.resalt(salt);
        }
        for spare in &mut self.spares {
            spare.resalt(salt);
        }
    }

    fn run(&mut self, sim: &SimConfig, opts: RunOptions<'_>) -> Result<DeviceRun, DeviceError> {
        let RunOptions {
            steps,
            start,
            perf,
            fault_plan,
            host_parallelism,
            ledger,
        } = opts;
        let mut perf = perf;
        // Node events recorded by *this* call (repairs, kills, migrations)
        // start here; the ledger gets exactly this slice, not the full log.
        let events_mark = self.events.len();
        if let Some(plan) = fault_plan {
            // At cluster granularity the armed plan is the *node-level*
            // schedule; member devices get theirs at construction.
            self.base_plan = plan;
        }
        let plan = self.base_plan.with_salt(self.salt);
        let start_step = start.as_ref().map_or(0, |cp| cp.step);
        let n = sim.n_atoms;
        let slabs = slab_domains(n, self.n_slabs);

        // Segment entry = "we hold a good checkpoint": repair membership
        // first so slabs orphaned by the previous attempt's crash have an
        // owner before any physics or fault evaluation happens.
        self.repair_membership(&slabs, start_step);
        let alive = self.alive_ranks();
        if alive.is_empty() || self.owner.iter().any(|&o| !self.nodes[o].alive) {
            return Err(DeviceError::Failed(format!(
                "cluster has no owner for every domain ({} of {} node(s) alive, no spares left)",
                alive.len(),
                self.total_nodes()
            )));
        }

        self.segment_boundary_faults(&plan, start_step, steps)
            .map_err(DeviceError::Failed)?;

        // Physics: computed once, on the first alive node, from the shared
        // checkpoint. Bit-identical to the single-device run by the
        // determinism + segment-transparency contracts.
        let physics_rank = alive[0];
        let phys = {
            let mut ro = RunOptions::steps(steps).with_host_parallelism(host_parallelism);
            if let Some(cp) = start {
                ro = ro.from_checkpoint(cp);
            }
            if let Some(p) = perf.as_deref_mut() {
                ro = ro.with_perf(p);
            }
            self.nodes[physics_rank].device.run(sim, ro)?
        };

        // Per-step halo faults: bounded resends charged to the timeline,
        // exhaustion rejected by the supervisor. Sites are evaluated with
        // the order-independent plan, so node order cannot matter.
        let session = FaultSession::with_budget(plan, self.policy.max_halo_resends);
        let mut halo_stats = FaultStats::default();
        let peers = alive.len() - 1;
        let mut compute_s = vec![0.0f64; self.nodes.len()];
        let mut halo_s = vec![0.0f64; self.nodes.len()];
        let mut halo_bytes = vec![0.0f64; self.nodes.len()];
        let mut halo_messages = vec![0u64; self.nodes.len()];
        let mut halo_resends_total = 0u64;
        for &rank in &alive {
            let local = self.owned_atoms(rank, &slabs);
            compute_s[rank] = phys.sim_seconds * (local as f64 / n.max(1) as f64);
            halo_s[rank] = steps as f64 * self.net.halo_exchange_s(local, n, peers);
            halo_bytes[rank] = steps as f64 * (n - local) as f64 * self.net.halo_bytes_per_atom;
            halo_messages[rank] = steps as u64 * peers as u64;
            if peers == 0 {
                continue;
            }
            let peer_bytes = (n - local) as f64 * self.net.halo_bytes_per_atom / peers as f64;
            for step in start_step..start_step + steps as u64 {
                for (slot, kind) in [(0u32, FaultKind::HaloDrop), (1u32, FaultKind::HaloCorrupt)] {
                    let out = session.peek(FaultSite::new(kind, step, rank as u32, slot));
                    halo_stats.injected += u64::from(out.failures);
                    if out.exhausted {
                        halo_stats.exhausted += 1;
                    } else {
                        halo_stats.retries += u64::from(out.failures);
                    }
                    let resend = f64::from(out.failures) * self.net.message_s(peer_bytes);
                    halo_s[rank] += resend;
                    halo_stats.extra_seconds += resend;
                    halo_bytes[rank] += f64::from(out.failures) * peer_bytes;
                    halo_resends_total += u64::from(out.failures);
                }
            }
        }
        // Exhausted halo sites stay in the stats (like the degradation
        // devices); the supervisor's reject-exhausted policy promotes them
        // to a failed segment.

        // Halo-payload validation: real FNV-1a digests of every slab of the
        // closing state, computed as an order-preserving parallel map and
        // folded serially — the PR 5 machinery, so digests (and everything
        // else) are bitwise-identical at any thread count.
        self.last_halo_digests = map_indexed(host_parallelism, slabs.len(), |i| {
            phys.checkpoint
                .domain_checksum(slabs[i].start, slabs[i].len)
        });
        self.halo_digest = self
            .last_halo_digests
            .iter()
            .fold(0xCBF2_9CE4_8422_2325u64, |acc, &d| acc.rotate_left(17) ^ d);

        // Critical path: the slowest node gates the step barrier; everyone
        // else stalls on the exchange. The all-reduce closes the segment.
        let crit_rank = alive
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ta = compute_s[a] + halo_s[a];
                let tb = compute_s[b] + halo_s[b];
                // Total order: times are finite by construction; ties go to
                // the lower rank so the argmax is deterministic.
                ta.partial_cmp(&tb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            })
            .unwrap_or(physics_rank);
        let allreduce_total = steps as f64 * self.net.allreduce_s(alive.len());
        let recovery_s = self.pending_recovery_s;
        let recovery_bytes = self.pending_recovery_bytes;
        let migrations_charged = self.pending_migrations;
        self.pending_recovery_s = 0.0;
        self.pending_recovery_bytes = 0.0;
        self.pending_migrations = 0;

        // Exactly the attribution fold's association, so the partition
        // identity holds bitwise: ((compute + halo) + allreduce) + recovery.
        let crit_compute = compute_s[crit_rank];
        let crit_halo = halo_s[crit_rank];
        let sim_seconds = ((crit_compute + crit_halo) + allreduce_total) + recovery_s;

        let mut faults = phys.faults;
        faults.merge(&halo_stats);
        faults.extra_seconds += recovery_s;

        let allreduce_bytes = steps as f64 * alive.len() as f64 * self.net.allreduce_payload_bytes;
        let halo_bytes_total: f64 = alive.iter().map(|&r| halo_bytes[r]).sum();

        if let Some(p) = perf {
            for &rank in &alive {
                let stall =
                    (compute_s[crit_rank] + halo_s[crit_rank]) - (compute_s[rank] + halo_s[rank]);
                for (name, value, unit) in [
                    (
                        format!("cluster.node{rank}.compute_s"),
                        compute_s[rank],
                        "seconds",
                    ),
                    (
                        format!("cluster.node{rank}.halo_bytes"),
                        halo_bytes[rank],
                        "bytes",
                    ),
                    (
                        format!("cluster.node{rank}.halo_messages"),
                        halo_messages[rank] as f64,
                        "events",
                    ),
                    (
                        format!("cluster.node{rank}.exchange_stall_s"),
                        stall,
                        "seconds",
                    ),
                ] {
                    let h = p.register(name, unit);
                    p.add(h, value.max(0.0));
                }
            }
            for (name, value, unit) in [
                ("cluster.allreduce_s", allreduce_total, "seconds"),
                ("cluster.recovery_s", recovery_s, "seconds"),
                ("cluster.halo_resends", halo_resends_total as f64, "events"),
                ("cluster.migrations", migrations_charged as f64, "events"),
            ] {
                let h = p.register(name, unit);
                p.add(h, value);
            }
        }

        let attribution = vec![
            ("compute", crit_compute),
            ("halo_exchange", crit_halo),
            ("all_reduce", allreduce_total),
            ("recovery", recovery_s),
        ];

        if let Some(led) = ledger {
            let source = self.label();
            led.device_phases(&source, &attribution);
            led.counter(&source, "sim_seconds", sim_seconds, sim_seconds, "s");
            for &rank in &alive {
                let node_src = format!("{source}.node{rank}");
                led.counter(
                    &node_src,
                    "compute_s",
                    sim_seconds,
                    compute_s[rank],
                    "seconds",
                );
                led.counter(
                    &node_src,
                    "halo_bytes",
                    sim_seconds,
                    halo_bytes[rank],
                    "bytes",
                );
                led.counter(
                    &node_src,
                    "halo_messages",
                    sim_seconds,
                    halo_messages[rank] as f64,
                    "events",
                );
            }
            led.counter(
                &source,
                "halo_resends",
                sim_seconds,
                halo_resends_total as f64,
                "events",
            );
            led.counter(
                &source,
                "migrations",
                sim_seconds,
                migrations_charged as f64,
                "events",
            );
            for ev in &self.events[events_mark..] {
                let (name, step, detail) = match ev {
                    NodeEvent::Killed { node, step, cause } => {
                        ("node_killed", *step, format!("node {node}: {cause}"))
                    }
                    NodeEvent::Partitioned { node, step } => {
                        ("node_partitioned", *step, format!("node {node}"))
                    }
                    NodeEvent::SlowNode { node, step } => {
                        ("node_slow", *step, format!("node {node}"))
                    }
                    NodeEvent::Reprovisioned { node, step } => {
                        ("node_reprovisioned", *step, format!("node {node}"))
                    }
                    NodeEvent::Migrated {
                        from,
                        to,
                        atoms,
                        step,
                    } => (
                        "domain_migrated",
                        *step,
                        format!("node {from} -> node {to} ({atoms} atoms)"),
                    ),
                };
                led.push(sim_obs::LedgerEvent {
                    t_s: led.sim_offset(),
                    kind: sim_obs::EventKind::Node,
                    source: source.clone(),
                    name: name.to_string(),
                    step: Some(step),
                    dur_s: None,
                    value: None,
                    unit: None,
                    detail: Some(detail),
                });
            }
        }

        let mut derived = vec![
            ("cluster_nodes", alive.len() as f64),
            (
                "cluster_halo_fraction",
                if sim_seconds > 0.0 {
                    crit_halo / sim_seconds
                } else {
                    0.0
                },
            ),
            (
                "cluster_allreduce_fraction",
                if sim_seconds > 0.0 {
                    allreduce_total / sim_seconds
                } else {
                    0.0
                },
            ),
        ];
        derived.extend(phys.derived.iter().copied());

        Ok(DeviceRun {
            sim_seconds,
            energies: phys.energies,
            checkpoint: phys.checkpoint,
            attribution,
            derived,
            ops: phys.ops,
            bytes_moved: ((phys.bytes_moved + halo_bytes_total) + allreduce_bytes) + recovery_bytes,
            faults,
        })
    }
}

#[cfg(test)]
// Bitwise f64 equality is the determinism invariant under test.
#[allow(clippy::float_cmp, clippy::unwrap_used)]
mod tests {
    use super::*;
    use md_core::checkpoint::SystemCheckpoint;
    use md_core::device::HostParallelism;
    use md_core::init;
    use md_core::observables::EnergyReport;
    use md_core::system::ParticleSystem;

    /// A deterministic toy device (same shape as md-core's NullDevice):
    /// reference physics, fixed per-step cost.
    struct TestDevice;

    impl MdDevice for TestDevice {
        fn label(&self) -> String {
            "test".to_string()
        }

        fn peak_ops_per_second(&self) -> f64 {
            1e9
        }

        fn run(&mut self, sim: &SimConfig, opts: RunOptions<'_>) -> Result<DeviceRun, DeviceError> {
            let (mut sys, start_step): (ParticleSystem<f64>, u64) = match opts.start {
                Some(cp) => (cp.restore(), cp.step),
                None => (init::initialize(sim), 0),
            };
            let params = sim.substrate();
            let mut kernel = md_core::forces::AllPairsFullKernel;
            let stepper = md_core::verlet::VelocityVerlet::new(sim.dt);
            use md_core::forces::ForceKernel;
            let mut pe = kernel.compute(&mut sys, &params);
            for _ in 0..opts.steps {
                pe = stepper.step(&mut sys, &mut kernel, &params);
            }
            let energies = EnergyReport::measure(&sys, pe);
            let seconds = opts.steps as f64 * 1e-3;
            Ok(DeviceRun {
                sim_seconds: seconds,
                energies,
                checkpoint: SystemCheckpoint::capture(&sys, start_step + opts.steps as u64),
                attribution: vec![("compute", seconds)],
                derived: vec![],
                ops: 1e6 * opts.steps as f64,
                bytes_moved: 0.0,
                faults: FaultStats::default(),
            })
        }
    }

    fn cluster(nodes: usize, spares: usize) -> ClusterMd {
        ClusterMd::new(
            (0..nodes)
                .map(|_| Box::new(TestDevice) as Box<dyn MdDevice>)
                .collect(),
            (0..spares)
                .map(|_| Box::new(TestDevice) as Box<dyn MdDevice>)
                .collect(),
            InterconnectModel::paper_2006(),
            ClusterPolicy::default_policy(),
        )
    }

    fn sim() -> SimConfig {
        SimConfig::reduced_lj(108)
    }

    #[test]
    fn cluster_physics_matches_single_device_bitwise() {
        let sim = sim();
        let single = TestDevice.run(&sim, RunOptions::steps(4)).unwrap();
        for nodes in [1, 2, 3, 4] {
            let run = cluster(nodes, 0).run(&sim, RunOptions::steps(4)).unwrap();
            assert_eq!(run.checkpoint, single.checkpoint, "{nodes} nodes");
            assert_eq!(
                run.energies.total.to_bits(),
                single.energies.total.to_bits()
            );
        }
    }

    #[test]
    fn interconnect_costs_grow_with_node_count() {
        let sim = sim();
        let t1 = cluster(1, 0).run(&sim, RunOptions::steps(4)).unwrap();
        let t4 = cluster(4, 0).run(&sim, RunOptions::steps(4)).unwrap();
        // One node pays no halo or all-reduce.
        let halo1: f64 = t1
            .attribution
            .iter()
            .find(|(k, _)| *k == "halo_exchange")
            .unwrap()
            .1;
        let halo4: f64 = t4
            .attribution
            .iter()
            .find(|(k, _)| *k == "halo_exchange")
            .unwrap()
            .1;
        assert_eq!(halo1, 0.0);
        assert!(halo4 > 0.0);
        // Four nodes each compute a quarter: compute shrinks, overhead grows.
        let comp1 = t1.attribution[0].1;
        let comp4 = t4.attribution[0].1;
        assert!(comp4 < comp1);
        assert!(t4.bytes_moved > t1.bytes_moved);
    }

    #[test]
    fn attribution_partitions_sim_seconds_exactly() {
        let sim = sim();
        for nodes in [1, 2, 4, 5] {
            let run = cluster(nodes, 0).run(&sim, RunOptions::steps(3)).unwrap();
            let folded = run.attribution.iter().fold(0.0f64, |acc, (_, s)| acc + s);
            assert_eq!(folded, run.sim_seconds, "{nodes} nodes");
        }
    }

    #[test]
    fn scripted_kill_fails_the_segment_then_migrates_to_spare() {
        let sim = sim();
        let mut c = cluster(4, 1);
        c.kill_node_at_step(2, 0);
        let err = c.run(&sim, RunOptions::steps(2));
        assert!(matches!(err, Err(DeviceError::Failed(_))), "{err:?}");
        assert_eq!(c.alive_nodes(), 3);
        // Retry (what the supervisor does after resalt): the spare joins.
        c.resalt(1);
        let run = c.run(&sim, RunOptions::steps(2)).unwrap();
        assert_eq!(c.alive_nodes(), 4);
        assert_eq!(c.spares_left(), 0);
        assert_eq!(c.migrations(), 1);
        // Recovery shows up in the timeline, not the physics.
        let recovery = run
            .attribution
            .iter()
            .find(|(k, _)| *k == "recovery")
            .unwrap()
            .1;
        assert!(recovery > 0.0);
        let clean = cluster(4, 0).run(&sim, RunOptions::steps(2)).unwrap();
        assert_eq!(run.checkpoint, clean.checkpoint);
        assert!(c
            .events()
            .iter()
            .any(|e| matches!(e, NodeEvent::Migrated { from: 2, .. })));
        assert!(c
            .events()
            .iter()
            .any(|e| matches!(e, NodeEvent::Reprovisioned { .. })));
    }

    #[test]
    fn kill_without_spare_migrates_to_survivor() {
        let sim = sim();
        let mut c = cluster(2, 0);
        c.kill_node_at_step(0, 0);
        assert!(c.run(&sim, RunOptions::steps(2)).is_err());
        c.resalt(1);
        let run = c.run(&sim, RunOptions::steps(2)).unwrap();
        assert_eq!(c.alive_nodes(), 1);
        // The survivor owns everything: no peers left, so no halo cost.
        let halo = run
            .attribution
            .iter()
            .find(|(k, _)| *k == "halo_exchange")
            .unwrap()
            .1;
        assert_eq!(halo, 0.0);
        let clean = cluster(2, 0).run(&sim, RunOptions::steps(2)).unwrap();
        assert_eq!(run.checkpoint, clean.checkpoint);
    }

    #[test]
    fn losing_every_node_is_a_hard_failure() {
        let sim = sim();
        let mut c = cluster(1, 0);
        c.kill_node_at_step(0, 0);
        assert!(c.run(&sim, RunOptions::steps(1)).is_err());
        c.resalt(1);
        let err = c.run(&sim, RunOptions::steps(1));
        assert!(matches!(err, Err(DeviceError::Failed(_))));
    }

    #[test]
    fn host_parallelism_is_bitwise_transparent() {
        let sim = sim();
        let run_at = |threads: usize| {
            let mut c = cluster(3, 0);
            let run = c
                .run(
                    &sim,
                    RunOptions::steps(3)
                        .with_host_parallelism(HostParallelism::from_threads(threads)),
                )
                .unwrap();
            let (digests, digest) = c.halo_digests();
            (
                run.checkpoint,
                run.sim_seconds.to_bits(),
                digests.to_vec(),
                digest,
            )
        };
        let serial = run_at(1);
        for threads in [2, 4, 8] {
            assert_eq!(run_at(threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn halo_digests_cover_every_slab_and_see_corruption() {
        let sim = sim();
        let mut c = cluster(4, 0);
        c.run(&sim, RunOptions::steps(2)).unwrap();
        let (digests, _) = c.halo_digests();
        assert_eq!(digests.len(), 4);
        // 108 atoms over 4 slabs: a remainder cut; digests must be distinct
        // (different atoms) and reproducible.
        let mut c2 = cluster(4, 0);
        c2.run(&sim, RunOptions::steps(2)).unwrap();
        assert_eq!(c.halo_digests(), c2.halo_digests());
    }

    #[test]
    fn seeded_node_faults_are_deterministic_and_recoverable() {
        let sim = sim();
        let run_once = || {
            let mut c = cluster(3, 1).with_node_fault_plan(FaultPlan::new(0xC0FFEE, 0.05));
            let mut outcomes = Vec::new();
            // Drive like the supervisor: resalt per attempt, retry failures.
            let mut cp: Option<SystemCheckpoint> = None;
            let mut step = 0u64;
            'seg: for seg in 0..3u64 {
                for attempt in 0..8u32 {
                    c.resalt((step << 8) | u64::from(attempt));
                    let mut ro = RunOptions::steps(2);
                    if let Some(ref c0) = cp {
                        ro = ro.from_checkpoint(c0);
                    }
                    match c.run(&sim, ro) {
                        Ok(run) => {
                            outcomes.push((seg, attempt, run.sim_seconds.to_bits()));
                            cp = Some(run.checkpoint);
                            step += 2;
                            continue 'seg;
                        }
                        Err(e) => outcomes.push((seg, attempt, e.to_string().len() as u64)),
                    }
                }
                panic!("segment {seg} never recovered");
            }
            (outcomes, cp.unwrap())
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0, "fault history must be deterministic");
        assert_eq!(a.1, b.1);
        // And the recovered physics matches the fault-free cluster.
        let mut clean = cluster(3, 1);
        let mut cp: Option<SystemCheckpoint> = None;
        for _ in 0..3 {
            let mut ro = RunOptions::steps(2);
            if let Some(ref c0) = cp {
                ro = ro.from_checkpoint(c0);
            }
            cp = Some(clean.run(&sim, ro).unwrap().checkpoint);
        }
        assert_eq!(a.1, cp.unwrap());
    }

    #[test]
    fn halo_faults_cost_time_only() {
        let sim = sim();
        let clean = cluster(4, 0).run(&sim, RunOptions::steps(6)).unwrap();
        // A plan whose rate fires halo drops but (at this seed) no
        // boundary faults in the first segment.
        let mut seed = 1u64;
        let (faulted, used_seed) = loop {
            let mut c = cluster(4, 0).with_node_fault_plan(FaultPlan::new(seed, 0.02));
            match c.run(&sim, RunOptions::steps(6)) {
                Ok(r) if r.faults.injected > 0 => break (r, seed),
                _ => seed += 1,
            }
            assert!(seed < 500, "no seed fired a halo fault");
        };
        assert_eq!(faulted.checkpoint, clean.checkpoint, "seed {used_seed}");
        assert_eq!(faulted.energies.total, clean.energies.total);
        assert!(
            faulted.sim_seconds > clean.sim_seconds,
            "halo resends must cost simulated time"
        );
        assert!(faulted.faults.extra_seconds > 0.0);
    }

    #[test]
    fn perf_counters_are_free_and_cover_every_node() {
        let sim = sim();
        let bare = cluster(3, 0).run(&sim, RunOptions::steps(3)).unwrap();
        let mut perf = sim_perf::PerfMonitor::new();
        let watched = cluster(3, 0)
            .run(&sim, RunOptions::steps(3).with_perf(&mut perf))
            .unwrap();
        assert_eq!(bare.checkpoint, watched.checkpoint);
        assert_eq!(bare.sim_seconds.to_bits(), watched.sim_seconds.to_bits());
        for rank in 0..3 {
            for suffix in [
                "compute_s",
                "halo_bytes",
                "halo_messages",
                "exchange_stall_s",
            ] {
                let name = format!("cluster.node{rank}.{suffix}");
                assert!(perf.find(&name).is_some(), "missing {name}");
            }
        }
        assert!(perf
            .find("cluster.allreduce_s")
            .is_some_and(|c| c.value() > 0.0));
        assert!(perf
            .find("cluster.recovery_s")
            .is_some_and(|c| c.value() == 0.0));
        // The critical-path node stalls zero; someone must wait.
        let stalls: Vec<f64> = (0..3)
            .map(|r| {
                perf.find(&format!("cluster.node{r}.exchange_stall_s"))
                    .unwrap()
                    .value()
            })
            .collect();
        assert!(stalls.contains(&0.0));
    }

    #[test]
    fn label_and_peak_reflect_the_cluster() {
        let c = cluster(4, 1);
        assert_eq!(c.label(), "cluster-4x-test");
        assert_eq!(c.peak_ops_per_second(), 4.0 * 1e9);
        assert_eq!(c.total_nodes(), 4);
        assert_eq!(c.spares_left(), 1);
    }
}
