//! Deterministic fault injection for the device simulators.
//!
//! The paper's accelerators misbehave on real hardware in device-specific
//! ways — stalled DMA transfers on the Cell, corrupted PCIe readbacks on the
//! GPU, starved streams on the MTA-2, ECC events on the Opteron. This crate
//! provides the shared machinery the device crates use to *inject* those
//! faults and *cost* their recovery, with two hard guarantees:
//!
//! 1. **Determinism.** A [`FaultPlan`] is seeded; the decision "does site X
//!    fault on retry k" is a pure function of `(seed, site, retry)`, drawn
//!    through the in-tree `rand` [`rand::RngCore`] machinery. Identical seeds
//!    give identical fault schedules regardless of the order sites are
//!    queried in, so fault-injected runs are exactly reproducible.
//! 2. **Simulated time only.** Every injected fault, timeout, and retry is
//!    charged to a [`FaultClock`] in *simulated* seconds (device cycles over
//!    the device clock). Host time never enters the model — sim-vet's
//!    determinism rule rejects `std::time` in this crate and in the device
//!    crates.
//!
//! Faults never touch physics: an injected failure discards the (modeled)
//! corrupt transfer and re-issues it, so the recovered trajectory is
//! bit-identical to the fault-free one and only the simulated runtime grows.
//! When a site keeps faulting past the session's retry budget, the device
//! either surfaces a typed error (Cell) or degrades to a modeled slow path
//! (GPU/MTA/Opteron) and records the exhaustion in [`FaultStats`] so the
//! harness supervisor can fall back to the reference device.

mod clock;
mod plan;
mod session;

pub use clock::FaultClock;
pub use plan::{FaultKind, FaultPlan, FaultSite};
pub use session::{FaultSession, FaultStats, SiteOutcome, DEFAULT_MAX_RETRIES};
