//! Simulated-time ledger for fault and recovery costs.

/// Accumulates the extra *simulated* seconds a run spends on injected faults
/// and their recovery. This is the only clock fault handling is allowed to
/// read or write: host time (`std::time`) is banned from the device crates
/// and from this crate by sim-vet's determinism rule.
///
/// Devices convert their native cycle counts to seconds with their own
/// clock rate before charging, so the ledger composes across heterogeneous
/// devices.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultClock {
    elapsed_s: f64,
}

impl FaultClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `seconds` of simulated recovery time. Negative or non-finite
    /// charges are rejected — a fault can only ever slow the simulated run
    /// down.
    pub fn advance(&mut self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.elapsed_s += seconds;
        }
    }

    /// Charge a cycle count at a given device clock rate.
    pub fn advance_cycles(&mut self, cycles: u64, clock_hz: f64) {
        if clock_hz > 0.0 {
            // Cycle counts fit f64 exactly for any realistic budget here.
            self.advance(cycles as f64 / clock_hz);
        }
    }

    /// Total simulated seconds charged so far.
    pub fn now(&self) -> f64 {
        self.elapsed_s
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn advances_accumulate() {
        let mut clock = FaultClock::new();
        clock.advance(1.5e-6);
        clock.advance(0.5e-6);
        assert!((clock.now() - 2.0e-6).abs() < 1e-18);
    }

    #[test]
    fn rejects_nonpositive_and_nonfinite() {
        let mut clock = FaultClock::new();
        clock.advance(-1.0);
        clock.advance(0.0);
        clock.advance(f64::NAN);
        clock.advance(f64::INFINITY);
        assert_eq!(clock.now(), 0.0);
    }

    #[test]
    fn cycles_convert_at_device_clock() {
        let mut clock = FaultClock::new();
        clock.advance_cycles(3_200, 3.2e9); // 3200 Cell cycles @ 3.2 GHz
        assert!((clock.now() - 1.0e-6).abs() < 1e-15);
        clock.advance_cycles(100, 0.0); // degenerate clock: no charge
        assert!((clock.now() - 1.0e-6).abs() < 1e-15);
    }
}
