//! Seeded fault plans: which sites fault, decided deterministically.

use rand::RngCore;

/// The failure classes the device simulators model. Each maps to a concrete
/// 2006-hardware hazard reported by the contemporary porting literature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Cell: an SPE DMA command fails and must be re-issued.
    DmaTransfer,
    /// Cell: an MFC tag-group wait spins past its timeout threshold.
    TagWaitTimeout,
    /// Cell: a PPE→SPE mailbox message is dropped and must be resent.
    MailboxDrop,
    /// Cell: `spe_create_thread` fails and the launch is repeated.
    SpeLaunch,
    /// GPU: a PCIe readback arrives corrupted (caught by checksum).
    ReadbackCorruption,
    /// GPU: a shader pass produces NaN lanes and is re-dispatched.
    ShaderNan,
    /// GPU: a host→GPU transfer times out and is re-sent.
    TransferTimeout,
    /// MTA: the runtime hands a loop fewer streams than requested and part
    /// of the iteration space is re-issued.
    StreamStarvation,
    /// MTA: hot-spotting on a full/empty word forces synchronization
    /// retries.
    HotSpotRetry,
    /// Opteron: an ECC corrected error forces a cache-line reload.
    EccReload,
    /// Cluster: a node dies at a segment boundary and its domain must be
    /// migrated to a survivor from the last checkpoint.
    NodeCrash,
    /// Cluster: a halo-exchange message is dropped in flight and resent.
    HaloDrop,
    /// Cluster: a halo-exchange message arrives corrupted (caught by the
    /// receiver's checksum) and is resent.
    HaloCorrupt,
    /// Cluster: the interconnect partitions and a node becomes unreachable
    /// for the rest of the segment attempt.
    LinkPartition,
    /// Cluster: a node runs slow enough to trip the per-segment watchdog.
    NodeSlow,
}

impl FaultKind {
    pub const ALL: [FaultKind; 15] = [
        FaultKind::DmaTransfer,
        FaultKind::TagWaitTimeout,
        FaultKind::MailboxDrop,
        FaultKind::SpeLaunch,
        FaultKind::ReadbackCorruption,
        FaultKind::ShaderNan,
        FaultKind::TransferTimeout,
        FaultKind::StreamStarvation,
        FaultKind::HotSpotRetry,
        FaultKind::EccReload,
        FaultKind::NodeCrash,
        FaultKind::HaloDrop,
        FaultKind::HaloCorrupt,
        FaultKind::LinkPartition,
        FaultKind::NodeSlow,
    ];

    /// The node-granularity kinds a cluster engine injects, as opposed to
    /// the intra-device kinds the device simulators inject themselves.
    pub const CLUSTER: [FaultKind; 5] = [
        FaultKind::NodeCrash,
        FaultKind::HaloDrop,
        FaultKind::HaloCorrupt,
        FaultKind::LinkPartition,
        FaultKind::NodeSlow,
    ];

    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DmaTransfer => "dma-transfer",
            FaultKind::TagWaitTimeout => "tag-wait-timeout",
            FaultKind::MailboxDrop => "mailbox-drop",
            FaultKind::SpeLaunch => "spe-launch",
            FaultKind::ReadbackCorruption => "readback-corruption",
            FaultKind::ShaderNan => "shader-nan",
            FaultKind::TransferTimeout => "transfer-timeout",
            FaultKind::StreamStarvation => "stream-starvation",
            FaultKind::HotSpotRetry => "hot-spot-retry",
            FaultKind::EccReload => "ecc-reload",
            FaultKind::NodeCrash => "node-crash",
            FaultKind::HaloDrop => "halo-drop",
            FaultKind::HaloCorrupt => "halo-corrupt",
            FaultKind::LinkPartition => "link-partition",
            FaultKind::NodeSlow => "node-slow",
        }
    }

    /// Stable discriminant mixed into the per-site seed.
    fn tag(self) -> u64 {
        match self {
            FaultKind::DmaTransfer => 1,
            FaultKind::TagWaitTimeout => 2,
            FaultKind::MailboxDrop => 3,
            FaultKind::SpeLaunch => 4,
            FaultKind::ReadbackCorruption => 5,
            FaultKind::ShaderNan => 6,
            FaultKind::TransferTimeout => 7,
            FaultKind::StreamStarvation => 8,
            FaultKind::HotSpotRetry => 9,
            FaultKind::EccReload => 10,
            FaultKind::NodeCrash => 11,
            FaultKind::HaloDrop => 12,
            FaultKind::HaloCorrupt => 13,
            FaultKind::LinkPartition => 14,
            FaultKind::NodeSlow => 15,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One potential injection point in a simulated run, identified by what it
/// is and where/when it happens. Sites are value types so the fault decision
/// can be a pure function of the site — no registration step, no ordering
/// dependence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultSite {
    pub kind: FaultKind,
    /// Force-evaluation index (0 = the priming evaluation).
    pub eval: u64,
    /// Execution unit: SPE id, GPU engine, MTA processor, core...
    pub unit: u32,
    /// Disambiguates several same-kind sites within one (eval, unit) —
    /// e.g. the get vs the put half of a DMA round trip.
    pub slot: u32,
}

impl FaultSite {
    pub fn new(kind: FaultKind, eval: u64, unit: u32, slot: u32) -> Self {
        Self {
            kind,
            eval,
            unit,
            slot,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (eval {}, unit {}, slot {})",
            self.kind, self.eval, self.unit, self.slot
        )
    }
}

/// SplitMix64 over the `rand::RngCore` trait — the same generator family the
/// workload initializer uses, kept private here so the plan owns its stream.
struct PlanRng {
    state: u64,
}

impl RngCore for PlanRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A seeded fault schedule. `faults_at` is a pure function of
/// `(seed, salt, site, retry)`: the site's fields are folded into the seed
/// and one draw from the resulting generator is compared against the rate.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Supervisor attempt salt: a retried *run* must see a fresh schedule,
    /// otherwise a deterministic plan reproduces the same exhaustion forever.
    salt: u64,
    /// Probability in [0, 1] that any given (site, retry) draw faults.
    pub rate: f64,
}

impl FaultPlan {
    pub fn new(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            salt: 0,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// A plan that never fires (rate 0).
    pub fn disabled() -> Self {
        Self::new(0, 0.0)
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The same schedule family under a different salt — used by the
    /// supervisor so attempt N+1 does not replay attempt N's faults.
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Does `site` fault on its `retry`-th consecutive attempt? Pure and
    /// order-independent: callers may query sites in any order, any number
    /// of times, and get the same schedule.
    pub fn faults_at(&self, site: FaultSite, retry: u32) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let mut key = self.seed ^ self.salt.rotate_left(17);
        for word in [
            site.kind.tag(),
            site.eval,
            u64::from(site.unit) << 32 | u64::from(site.slot),
            u64::from(retry),
        ] {
            // Fold each field through one SplitMix64 step so nearby sites
            // decorrelate.
            key = PlanRng {
                state: key ^ word.wrapping_mul(0xD6E8_FEB8_6659_FD93),
            }
            .next_u64();
        }
        let mut rng = PlanRng { state: key };
        let draw = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        draw < self.rate
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(42, 0.3);
        let b = FaultPlan::new(42, 0.3);
        for kind in FaultKind::ALL {
            for eval in 0..20 {
                for unit in 0..4 {
                    let s = FaultSite::new(kind, eval, unit, 0);
                    for retry in 0..3 {
                        assert_eq!(a.faults_at(s, retry), b.faults_at(s, retry));
                    }
                }
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1, 0.5);
        let b = FaultPlan::new(2, 0.5);
        let diverged = (0..200).any(|eval| {
            let s = FaultSite::new(FaultKind::DmaTransfer, eval, 0, 0);
            a.faults_at(s, 0) != b.faults_at(s, 0)
        });
        assert!(diverged, "seeds 1 and 2 should give different schedules");
    }

    #[test]
    fn salt_changes_the_schedule() {
        let base = FaultPlan::new(7, 0.5);
        let salted = base.with_salt(1);
        let diverged = (0..200).any(|eval| {
            let s = FaultSite::new(FaultKind::SpeLaunch, eval, 0, 0);
            base.faults_at(s, 0) != salted.faults_at(s, 0)
        });
        assert!(diverged);
    }

    #[test]
    fn rate_bounds() {
        let never = FaultPlan::new(3, 0.0);
        let always = FaultPlan::new(3, 1.0);
        for eval in 0..50 {
            let s = FaultSite::new(FaultKind::EccReload, eval, 0, 0);
            assert!(!never.faults_at(s, 0));
            assert!(always.faults_at(s, 0));
        }
        // Out-of-range rates are clamped.
        assert_eq!(FaultPlan::new(0, 7.5).rate, 1.0);
        assert_eq!(FaultPlan::new(0, -1.0).rate, 0.0);
    }

    #[test]
    fn empirical_rate_tracks_requested_rate() {
        let plan = FaultPlan::new(99, 0.25);
        let mut hits = 0u32;
        let total = 4000;
        for eval in 0..total {
            let s = FaultSite::new(FaultKind::ShaderNan, eval, 0, 0);
            if plan.faults_at(s, 0) {
                hits += 1;
            }
        }
        let observed = f64::from(hits) / f64::from(total as u32);
        assert!(
            (observed - 0.25).abs() < 0.03,
            "observed fault rate {observed} vs requested 0.25"
        );
    }

    #[test]
    fn labels_round_trip_through_display() {
        for kind in FaultKind::ALL {
            assert_eq!(kind.to_string(), kind.label());
        }
        let site = FaultSite::new(FaultKind::MailboxDrop, 3, 1, 0);
        assert!(site.to_string().contains("mailbox-drop"));
        assert!(site.to_string().contains("eval 3"));
    }
}
