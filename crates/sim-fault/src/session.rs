//! Per-run fault session: bounded retries, outcome queries, and statistics.

use crate::clock::FaultClock;
use crate::plan::{FaultPlan, FaultSite};

/// Aggregate fault statistics for one simulated run. Devices expose this on
/// their run-result structs so the harness supervisor (and tests) can see
/// what recovery cost without re-deriving the schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultStats {
    /// Faults injected (each failed attempt counts once).
    pub injected: u64,
    /// Successful retries after a fault (a site that failed twice then
    /// succeeded contributes 2 to `injected` and 2 to `retries`).
    pub retries: u64,
    /// Sites that kept faulting past the retry budget.
    pub exhausted: u64,
    /// Extra simulated seconds spent on fault recovery.
    pub extra_seconds: f64,
}

impl FaultStats {
    /// Did anything at all fire?
    pub fn any(&self) -> bool {
        self.injected > 0 || self.exhausted > 0
    }

    /// Fold another run's stats in (e.g. across supervisor segments).
    pub fn merge(&mut self, other: &FaultStats) {
        self.injected += other.injected;
        self.retries += other.retries;
        self.exhausted += other.exhausted;
        self.extra_seconds += other.extra_seconds;
    }
}

/// What happened at one injection site after the session applied its retry
/// budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteOutcome {
    /// Consecutive failures before success (0 = clean first attempt).
    pub failures: u32,
    /// True when the site failed on every attempt up to and including the
    /// retry budget; the caller must take its exhaustion path (typed error
    /// or modeled degradation).
    pub exhausted: bool,
}

impl SiteOutcome {
    pub fn clean() -> Self {
        Self {
            failures: 0,
            exhausted: false,
        }
    }
}

/// Drives a [`FaultPlan`] through one simulated run: answers "what happens
/// at this site", applies the retry budget, and keeps the ledger of injected
/// faults and their simulated-time cost.
#[derive(Clone, Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    max_retries: u32,
    stats: FaultStats,
    clock: FaultClock,
}

/// Default retry budget: matches the "try a handful of times then escalate"
/// policy the porting reports describe for transient DMA/transfer errors.
pub const DEFAULT_MAX_RETRIES: u32 = 3;

impl FaultSession {
    pub fn new(plan: FaultPlan) -> Self {
        Self::with_budget(plan, DEFAULT_MAX_RETRIES)
    }

    /// A session with an explicit retry budget (attempts = budget + 1).
    pub fn with_budget(plan: FaultPlan, max_retries: u32) -> Self {
        Self {
            plan,
            max_retries,
            stats: FaultStats::default(),
            clock: FaultClock::new(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Resolve `site`: walk the plan's per-retry decisions until the site
    /// succeeds or the retry budget is exhausted, recording every injected
    /// failure. Callers charge the per-attempt recovery cost themselves via
    /// [`FaultSession::charge`] (the cost model is device-specific).
    pub fn outcome(&mut self, site: FaultSite) -> SiteOutcome {
        let out = self.peek(site);
        self.commit(out);
        out
    }

    /// Resolve `site` WITHOUT touching the ledger: the pure walk of the
    /// plan's per-retry decisions. Host-parallel device lanes use this to
    /// evaluate their injection sites concurrently (the plan is order
    /// independent), then replay the outcomes into the ledger in lane order
    /// via [`FaultSession::commit`], so stats and charges end up identical
    /// to a serial walk.
    pub fn peek(&self, site: FaultSite) -> SiteOutcome {
        let mut failures = 0u32;
        while failures <= self.max_retries {
            if !self.plan.faults_at(site, failures) {
                break;
            }
            failures += 1;
        }
        SiteOutcome {
            failures,
            exhausted: failures > self.max_retries,
        }
    }

    /// Record a peeked outcome in the ledger, exactly as
    /// [`FaultSession::outcome`] would have.
    pub fn commit(&mut self, out: SiteOutcome) {
        self.stats.injected += u64::from(out.failures);
        if out.exhausted {
            self.stats.exhausted += 1;
        } else {
            self.stats.retries += u64::from(out.failures);
        }
    }

    /// Charge `seconds` of simulated recovery time to this session.
    pub fn charge(&mut self, seconds: f64) {
        self.clock.advance(seconds);
        if seconds.is_finite() && seconds > 0.0 {
            self.stats.extra_seconds += seconds;
        }
    }

    /// Charge a device-native cycle count at `clock_hz`.
    pub fn charge_cycles(&mut self, cycles: u64, clock_hz: f64) {
        if clock_hz > 0.0 {
            self.charge(cycles as f64 / clock_hz);
        }
    }

    /// Simulated seconds charged so far.
    pub fn elapsed(&self) -> f64 {
        self.clock.now()
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;

    #[test]
    fn disabled_plan_is_always_clean() {
        let mut session = FaultSession::new(FaultPlan::disabled());
        for eval in 0..100 {
            let site = FaultSite::new(FaultKind::DmaTransfer, eval, 0, 0);
            assert_eq!(session.outcome(site), SiteOutcome::clean());
        }
        assert!(!session.stats().any());
        assert_eq!(session.elapsed(), 0.0);
    }

    #[test]
    fn always_faulting_plan_exhausts_at_budget() {
        let mut session = FaultSession::with_budget(FaultPlan::new(0, 1.0), 2);
        let out = session.outcome(FaultSite::new(FaultKind::ShaderNan, 0, 0, 0));
        assert!(out.exhausted);
        assert_eq!(out.failures, 3); // budget 2 → 3 failed attempts
        let stats = session.stats();
        assert_eq!(stats.injected, 3);
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn recovered_site_counts_retries() {
        // Find a site that faults once then recovers under this seed.
        let plan = FaultPlan::new(1234, 0.4);
        let mut found = None;
        for eval in 0..5000 {
            let site = FaultSite::new(FaultKind::EccReload, eval, 0, 0);
            if plan.faults_at(site, 0) && !plan.faults_at(site, 1) {
                found = Some(site);
                break;
            }
        }
        let site = found.expect("a recover-after-one-failure site exists");
        let mut session = FaultSession::new(plan);
        let out = session.outcome(site);
        assert_eq!(out.failures, 1);
        assert!(!out.exhausted);
        let stats = session.stats();
        assert_eq!(stats.injected, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.exhausted, 0);
    }

    #[test]
    fn identical_sessions_replay_identically() {
        let mk = || FaultSession::new(FaultPlan::new(77, 0.3));
        let (mut a, mut b) = (mk(), mk());
        for eval in 0..200 {
            for kind in [FaultKind::DmaTransfer, FaultKind::StreamStarvation] {
                let site = FaultSite::new(kind, eval, 1, 2);
                assert_eq!(a.outcome(site), b.outcome(site));
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn peek_then_commit_matches_outcome() {
        let mk = || FaultSession::with_budget(FaultPlan::new(42, 0.35), 2);
        let (mut direct, mut replayed) = (mk(), mk());
        for eval in 0..300 {
            let site = FaultSite::new(FaultKind::DmaTransfer, eval, 3, 1);
            let a = direct.outcome(site);
            let b = replayed.peek(site);
            replayed.commit(b);
            assert_eq!(a, b);
        }
        assert_eq!(direct.stats(), replayed.stats());
    }

    #[test]
    fn peek_is_pure() {
        let session = FaultSession::new(FaultPlan::new(9, 0.5));
        let site = FaultSite::new(FaultKind::EccReload, 0, 0, 0);
        let first = session.peek(site);
        assert_eq!(session.peek(site), first);
        assert!(!session.stats().any(), "peek must not touch the ledger");
    }

    #[test]
    fn charges_accumulate_into_stats_and_clock() {
        let mut session = FaultSession::new(FaultPlan::disabled());
        session.charge(2.0e-6);
        session.charge_cycles(200, 2.0e9); // 100 ns
        session.charge(-5.0); // rejected
        assert!((session.elapsed() - 2.1e-6).abs() < 1e-15);
        assert!((session.stats().extra_seconds - 2.1e-6).abs() < 1e-15);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = FaultStats {
            injected: 2,
            retries: 1,
            exhausted: 0,
            extra_seconds: 1.0e-6,
        };
        let b = FaultStats {
            injected: 3,
            retries: 3,
            exhausted: 1,
            extra_seconds: 2.0e-6,
        };
        a.merge(&b);
        assert_eq!(a.injected, 5);
        assert_eq!(a.retries, 4);
        assert_eq!(a.exhausted, 1);
        assert!((a.extra_seconds - 3.0e-6).abs() < 1e-15);
        assert!(a.any());
    }
}
