// Probes the device-specific `OpteronRun` internals (per-level miss rates,
// flop vs memory cycles) that the unified `MdDevice` report intentionally
// does not expose, so it calls the raw device API directly.
#![allow(deprecated)]

fn main() {
    for n in [256usize, 512, 1024, 2048, 4096, 8192] {
        let cfg = md_core::params::SimConfig::reduced_lj(n);
        let run = opteron::OpteronCpu::paper_reference().run_md(&cfg, 1);
        println!(
            "N={n:5} t={:.6}s flop_cyc={:.3e} mem_cyc={:.3e} l1miss={:.4} avgmem={:.2}",
            run.sim_seconds,
            run.flop_cycles,
            run.memory_cycles,
            run.memory.l1.miss_rate(),
            run.memory.avg_cycles()
        );
    }
}
