// Probes how the Opteron's runtime decomposes as N grows, via the unified
// `MdDevice` report: compute vs memory-stall attribution and the cache miss
// rates surfaced in the derived metrics.

use md_core::device::{MdDevice, RunOptions};

fn main() {
    for n in [256usize, 512, 1024, 2048, 4096, 8192] {
        let cfg = md_core::params::SimConfig::reduced_lj(n);
        let mut cpu = opteron::OpteronCpu::paper_reference();
        let run = cpu.run(&cfg, RunOptions::steps(1)).expect("opteron run");
        let attributed = |key: &str| {
            run.attribution
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(0.0, |(_, v)| *v)
        };
        let derived = |key: &str| {
            run.derived
                .iter()
                .find(|(k, _)| *k == key)
                .map_or(0.0, |(_, v)| *v)
        };
        println!(
            "N={n:5} t={:.6}s compute={:.3e}s mem_stall={:.3e}s l1miss={:.4} l2miss={:.4}",
            run.sim_seconds,
            attributed("compute"),
            attributed("memory_stall"),
            derived("l1_miss_rate"),
            derived("l2_miss_rate"),
        );
    }
}
