//! Opteron (K8) timing parameters.

use memsim::HierarchyConfig;

/// Microarchitectural constants for the simulated 2.2 GHz Opteron.
///
/// The flop/issue costs are effective scalar-code values: the paper's
/// reference implementation is plain compiled C, not hand-vectorized SSE2, so
/// the model charges roughly one FP operation per cycle plus a fixed
/// loop-iteration overhead (index update, compare, branch — the K8 predicts
/// these well, so the overhead is small and constant).
#[derive(Clone, Copy, Debug)]
pub struct OpteronConfig {
    /// Core clock in Hz (2.2 GHz in the paper).
    pub clock_hz: f64,
    /// Effective cycles per scalar floating-point operation.
    pub cycles_per_flop: f64,
    /// Fixed integer/branch overhead per inner-loop iteration (cycles).
    pub loop_overhead_cycles: f64,
    /// Memory system geometry and latencies.
    pub memory: HierarchyConfig,
    /// Enable the K8's next-line stream prefetcher (off for the paper
    /// baseline; the `prefetch` ablation turns it on to quantify how much of
    /// the Figure 9 cache penalty it recovers on this kernel's sequential
    /// inner loop).
    pub prefetch: bool,
}

impl OpteronConfig {
    /// The paper's reference machine.
    pub fn paper_reference() -> Self {
        Self {
            clock_hz: 2.2e9,
            cycles_per_flop: 1.0,
            loop_overhead_cycles: 2.0,
            memory: HierarchyConfig::opteron(),
            prefetch: false,
        }
    }
}

impl OpteronConfig {
    /// A hand-vectorized SSE2 build of the kernel — the optimization the
    /// paper's reference implementation *doesn't* have (its comparisons use
    /// plain compiled C). Two f64 lanes per op and tighter loop control; the
    /// memory system is unchanged, so this ablation shows how much of the
    /// device speedups would survive against a tuned host baseline.
    pub fn sse2_vectorized() -> Self {
        Self {
            cycles_per_flop: 0.55,
            loop_overhead_cycles: 1.0,
            ..Self::paper_reference()
        }
    }

    /// The paper baseline plus the hardware stream prefetcher.
    pub fn with_prefetcher() -> Self {
        Self {
            prefetch: true,
            ..Self::paper_reference()
        }
    }
}

impl Default for OpteronConfig {
    fn default() -> Self {
        Self::paper_reference()
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_clock() {
        let c = OpteronConfig::paper_reference();
        assert_eq!(c.clock_hz, 2.2e9);
        assert_eq!(c.memory.l1.size_bytes, 64 * 1024);
        assert_eq!(c.memory.l2.size_bytes, 1024 * 1024);
    }
}
