//! The cache-traced Opteron MD run.

use crate::config::OpteronConfig;
use md_core::device::HostParallelism;
use md_core::forces::{gather_row, GatherRow, SoaPositions};
use md_core::forces::{AllPairsFullKernel, ForceKernel};
use md_core::init;
use md_core::observables::EnergyReport;
use md_core::parallel::map_lanes;
use md_core::params::SimConfig;
use md_core::system::ParticleSystem;
use md_core::verlet::VelocityVerlet;
use memsim::{AccessKind, AddressSpace, ArrayRegion, HierarchyStats, MemoryHierarchy};
use vecmath::Vec3;

/// Per-pair flop counts for the scalar kernel (displacement + minimum image +
/// r²: subs, conditional corrections, multiplies, adds).
const FLOPS_DISTANCE: f64 = 14.0;
/// Additional flops when a pair is inside the cutoff (LJ energy+force and the
/// acceleration accumulation).
const FLOPS_INTERACT: f64 = 20.0;
/// Per-atom flops in the O(N) integration steps (two half-kicks + drift +
/// wrap + kinetic-energy accumulation).
const FLOPS_INTEGRATE: f64 = 24.0;

/// Result of a simulated Opteron run.
#[derive(Clone, Debug)]
pub struct OpteronRun {
    /// Simulated wall-clock seconds on the 2006 reference machine.
    pub sim_seconds: f64,
    /// Simulated cycles, split by source.
    pub flop_cycles: f64,
    pub memory_cycles: f64,
    /// Final energies — must agree with a plain `md_core` run, proving the
    /// timed replay computes the same physics.
    pub energies: EnergyReport,
    /// Cache behaviour over the whole run.
    pub memory: HierarchyStats,
    /// Total floating-point operations charged.
    pub flops: f64,
    /// Demand loads issued (every simulated read reference).
    pub loads: u64,
    /// Demand stores issued (every simulated write reference).
    pub stores: u64,
    /// Injected-fault accounting for this run (zero when no plan is armed).
    #[cfg(feature = "fault-inject")]
    pub faults: sim_fault::FaultStats,
}

/// The memory front-end: plain hierarchy or prefetcher-assisted.
#[derive(Clone)]
enum MemFrontend {
    Plain(MemoryHierarchy),
    Prefetching(memsim::PrefetchingHierarchy),
}

impl MemFrontend {
    fn access(&mut self, addr: u64, kind: AccessKind) -> u64 {
        match self {
            MemFrontend::Plain(h) => h.access(addr, kind),
            MemFrontend::Prefetching(h) => h.access(addr, kind),
        }
    }

    fn stats(&self) -> HierarchyStats {
        match self {
            MemFrontend::Plain(h) => h.stats(),
            MemFrontend::Prefetching(h) => h.inner().stats(),
        }
    }

    fn reset(&mut self) {
        match self {
            MemFrontend::Plain(h) => h.reset(),
            MemFrontend::Prefetching(h) => h.reset(),
        }
    }

    /// Timing-normalized state equality (see
    /// [`MemoryHierarchy::replay_state_eq`]); differing front-end kinds are
    /// never equivalent.
    fn replay_state_eq(&self, other: &MemFrontend) -> bool {
        match (self, other) {
            (MemFrontend::Plain(a), MemFrontend::Plain(b)) => a.replay_state_eq(b),
            (MemFrontend::Prefetching(a), MemFrontend::Prefetching(b)) => a.replay_state_eq(b),
            _ => false,
        }
    }

    /// Skip a memoized replay (see [`MemoryHierarchy::apply_replay`]).
    /// Callers establish `self.replay_state_eq(entry)` first, which also
    /// guarantees all three values are the same front-end kind.
    fn apply_replay(&mut self, entry: &MemFrontend, exit: &MemFrontend) {
        match (self, entry, exit) {
            (MemFrontend::Plain(s), MemFrontend::Plain(e), MemFrontend::Plain(x)) => {
                s.apply_replay(e, x);
            }
            (
                MemFrontend::Prefetching(s),
                MemFrontend::Prefetching(e),
                MemFrontend::Prefetching(x),
            ) => s.apply_replay(e, x),
            _ => debug_assert!(false, "replay_state_eq rejects mixed front-end kinds"),
        }
    }
}

/// One memoized force-evaluation cache replay.
///
/// A force evaluation's memory-reference stream is fully determined by the
/// atom count and the array layout — positions' *values* never enter the
/// trace. The hierarchy is a deterministic automaton, so whenever it
/// re-enters a state replay-equivalent to `entry`, replaying the stream
/// *must* cost the same demand cycles and land in a state equivalent to
/// `exit`. The steady-state MD loop re-enters the same pre-evaluation cache
/// state every step, so after the first two evaluations the O(N²) replay
/// collapses to an O(cache-size) equality check plus a state install —
/// without changing a single reported number.
struct TraceMemo {
    /// Stream identity: the memo only applies to the exact same reference
    /// sequence (same atom count, same simulated array bases).
    n: usize,
    pos_base: u64,
    acc_base: u64,
    entry: MemFrontend,
    exit: MemFrontend,
    demand: f64,
    loads: u64,
    stores: u64,
}

/// The simulated CPU. Holds the cache hierarchy so repeated calls can model
/// warm or cold caches as the caller chooses.
pub struct OpteronCpu {
    pub config: OpteronConfig,
    hierarchy: MemFrontend,
    /// Demand cycles charged (the prefetching frontend's inner hierarchy
    /// also counts background fills, so demand cycles are tracked here).
    demand_cycles: f64,
    /// Demand reference counts by direction, for the perf-counter layer.
    /// Pure event counts: they never feed back into the cycle accounting.
    loads: u64,
    stores: u64,
    /// Last force-evaluation replay, reused when the cache re-enters the
    /// same state ([`TraceMemo`]). `None` disables memoization (the
    /// benchmark baseline) — results are identical either way, only the
    /// host wall-clock differs.
    trace_memo: Option<TraceMemo>,
    trace_memo_enabled: bool,
    /// When armed, ECC-style reload faults fire per the plan's schedule.
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<sim_fault::FaultPlan>,
}

impl OpteronCpu {
    pub fn new(config: OpteronConfig) -> Self {
        let hierarchy = if config.prefetch {
            MemFrontend::Prefetching(memsim::PrefetchingHierarchy::new(config.memory))
        } else {
            MemFrontend::Plain(MemoryHierarchy::new(config.memory))
        };
        Self {
            hierarchy,
            config,
            demand_cycles: 0.0,
            loads: 0,
            stores: 0,
            trace_memo: None,
            trace_memo_enabled: true,
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }

    /// Disable (or re-enable) the force-evaluation replay memo. Every
    /// reported number is identical either way; turning it off restores the
    /// full O(N²) cache replay per evaluation, which the scaling benchmark
    /// uses as its wall-clock baseline.
    pub fn set_trace_memo(&mut self, enabled: bool) {
        self.trace_memo_enabled = enabled;
        if !enabled {
            self.trace_memo = None;
        }
    }

    pub fn paper_reference() -> Self {
        Self::new(OpteronConfig::paper_reference())
    }

    /// Arm deterministic fault injection for subsequent runs.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: sim_fault::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    #[inline]
    fn mem_access(&mut self, addr: u64, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.loads += 1,
            AccessKind::Write => self.stores += 1,
        }
        self.demand_cycles += self.hierarchy.access(addr, kind) as f64;
    }

    /// Run the full MD kernel (Figure 4), replaying memory traffic through
    /// the cache model. Physics is double precision, exactly as the paper's
    /// reference implementation; the scenario substrate selects the pair
    /// potential, ensemble, and precision policy. This is the single run
    /// path behind [`md_core::device::MdDevice::run`].
    fn run_md_from_impl(
        &mut self,
        sys: &mut ParticleSystem<f64>,
        sim: &SimConfig,
        steps: usize,
        mut perf: Option<&mut sim_perf::PerfMonitor>,
        par: HostParallelism,
    ) -> OpteronRun {
        self.hierarchy.reset();
        self.demand_cycles = 0.0;
        self.loads = 0;
        self.stores = 0;
        let handles = perf.as_deref_mut().map(PerfHandles::register);
        let sub = sim.substrate::<f64>();
        // Ensemble work (thermostat rescale) is O(N) per step on top of the
        // integration loop; zero under NVE so the paper runs are untouched.
        let ens_flops = sys.n() as f64 * sub.extra_step_ops_per_atom();
        let vv = VelocityVerlet::new(sim.dt);

        // Lay out the logical arrays in the simulated address space.
        let elem = size_of::<Vec3<f64>>(); // 24 bytes
        let mut space = AddressSpace::new();
        let pos_r = space.alloc_array(sys.n(), elem);
        let vel_r = space.alloc_array(sys.n(), elem);
        let acc_r = space.alloc_array(sys.n(), elem);

        let mut flops = 0.0f64;
        let mut loop_iters = 0.0f64;

        #[cfg(feature = "fault-inject")]
        let mut fault = self.fault_plan.map(sim_fault::FaultSession::new);
        // Extra memory cycles charged by injected ECC reloads. Declared
        // unconditionally (it stays 0.0 in non-fault builds) because the
        // perf sampler folds it into the stall counter either way.
        #[allow(unused_mut)]
        let mut fault_extra_cycles = 0.0f64;
        // An ECC-corrected memory error forces a scrubbed cache line to be
        // refetched from DRAM; the reload costs one DRAM round trip and
        // touches nothing but the timeline.
        #[cfg(feature = "fault-inject")]
        let ecc_reload_cycles = self.config.memory.dram_cycles as f64;

        // Prime the accelerations (step-0 force evaluation), charged like any
        // other evaluation — the paper's total runtime includes everything.
        let mut pe =
            self.traced_forces(sys, &sub, &pos_r, &acc_r, &mut flops, &mut loop_iters, par);
        #[cfg(feature = "fault-inject")]
        {
            fault_extra_cycles += resolve_degradable(
                &mut fault,
                sim_fault::FaultSite::new(sim_fault::FaultKind::EccReload, 0, 0, 0),
                ecc_reload_cycles,
                self.config.clock_hz,
            );
        }
        self.perf_sample(&mut perf, handles, flops, loop_iters, fault_extra_cycles);

        // `_step` is only read by the fault-injection site below.
        for _step in 0..steps {
            // Steps 1, 3, 4 of Figure 4: O(N) integration. One pass reads
            // acc + vel + pos and writes vel + pos.
            for i in 0..sys.n() {
                self.mem_access(acc_r.addr(i), AccessKind::Read);
                self.mem_access(vel_r.addr(i), AccessKind::Write);
                self.mem_access(pos_r.addr(i), AccessKind::Write);
            }
            flops += FLOPS_INTEGRATE * sys.n() as f64;
            vv.kick_drift(sys);

            // Step 2: the traced O(N²) force evaluation.
            pe = self.traced_forces(sys, &sub, &pos_r, &acc_r, &mut flops, &mut loop_iters, par);
            #[cfg(feature = "fault-inject")]
            {
                fault_extra_cycles += resolve_degradable(
                    &mut fault,
                    sim_fault::FaultSite::new(
                        sim_fault::FaultKind::EccReload,
                        _step as u64 + 1,
                        0,
                        0,
                    ),
                    ecc_reload_cycles,
                    self.config.clock_hz,
                );
            }

            // Second half-kick + step 5 energy reduction.
            for i in 0..sys.n() {
                self.mem_access(acc_r.addr(i), AccessKind::Read);
                self.mem_access(vel_r.addr(i), AccessKind::Write);
            }
            flops += 6.0 * sys.n() as f64;
            vv.kick(sys);
            sub.apply_thermostat(sys);
            flops += ens_flops;
            self.perf_sample(&mut perf, handles, flops, loop_iters, fault_extra_cycles);
        }

        let stats = self.hierarchy.stats();
        let flop_cycles =
            flops * self.config.cycles_per_flop + loop_iters * self.config.loop_overhead_cycles;
        // Demand-path memory cycles only: with the prefetcher on, background
        // fills also pass through the hierarchy but cost the program nothing.
        #[allow(unused_mut)]
        let mut memory_cycles = self.demand_cycles;
        #[cfg(feature = "fault-inject")]
        {
            memory_cycles += fault_extra_cycles;
        }
        let total_cycles = flop_cycles + memory_cycles;
        OpteronRun {
            sim_seconds: total_cycles / self.config.clock_hz,
            flop_cycles,
            memory_cycles,
            energies: EnergyReport::measure(sys, pe),
            memory: stats,
            flops,
            loads: self.loads,
            stores: self.stores,
            #[cfg(feature = "fault-inject")]
            faults: fault.map_or_else(sim_fault::FaultStats::default, |f| f.stats()),
        }
    }

    /// Mirror the run's accumulators into the perf monitor and take one
    /// time-series sample at the current simulated time. Reads only; the
    /// run's own arithmetic never depends on it.
    fn perf_sample(
        &self,
        perf: &mut Option<&mut sim_perf::PerfMonitor>,
        handles: Option<PerfHandles>,
        flops: f64,
        loop_iters: f64,
        fault_extra_cycles: f64,
    ) {
        let (Some(p), Some(h)) = (perf.as_deref_mut(), handles) else {
            return;
        };
        let stats = self.hierarchy.stats();
        p.record_total(h.loads, self.loads as f64);
        p.record_total(h.stores, self.stores as f64);
        p.record_total(h.l1_hits, stats.l1.hits as f64);
        p.record_total(h.l1_misses, stats.l1.misses as f64);
        p.record_total(h.l2_hits, stats.l2.hits as f64);
        p.record_total(h.l2_misses, stats.l2.misses as f64);
        p.record_total(h.mem_stall_cycles, self.demand_cycles + fault_extra_cycles);
        p.record_total(h.flops, flops);
        let cycles = flops * self.config.cycles_per_flop
            + loop_iters * self.config.loop_overhead_cycles
            + self.demand_cycles
            + fault_extra_cycles;
        p.sample_all(cycles / self.config.clock_hz);
    }

    /// The step-2 gather loop with interleaved cache accesses. Numerics are
    /// identical to [`AllPairsFullKernel`].
    ///
    /// The evaluation is split into heterogeneous lanes run through
    /// [`map_lanes`]: one lane replays the run's exact memory-reference
    /// sequence through the cache hierarchy (inherently serial — every access
    /// mutates cache state), and the remaining lanes compute the per-atom
    /// physics rows via the shared tiled [`gather_row`]. The cache replay
    /// never reads the physics and the physics never reads the cache, so the
    /// two halves overlap on host threads while the serial fold below keeps
    /// every accumulator in the same order as a serial run — demand cycles,
    /// reference counts, flops, PE, and accelerations are bitwise identical
    /// at any thread count.
    #[allow(clippy::too_many_arguments)]
    fn traced_forces(
        &mut self,
        sys: &mut ParticleSystem<f64>,
        sub: &md_core::scenario::Substrate<f64>,
        pos_r: &ArrayRegion,
        acc_r: &ArrayRegion,
        flops: &mut f64,
        loop_iters: &mut f64,
        par: HostParallelism,
    ) -> f64 {
        let n = sys.n();
        let l = sys.box_len;
        let inv_m = sys.mass.recip();
        let soa = SoaPositions::from_positions(&sys.positions);

        enum Lane<'a> {
            Trace {
                h: &'a mut MemFrontend,
                memo: &'a mut Option<TraceMemo>,
                memo_enabled: bool,
            },
            Rows {
                lo: usize,
                hi: usize,
            },
        }
        enum LaneOut {
            Trace {
                demand: f64,
                loads: u64,
                stores: u64,
            },
            Rows(Vec<GatherRow<f64>>),
        }

        // Lane 0 owns the cache replay; the row range is split over the
        // remaining workers. The split never changes any value — rows are
        // pure per-atom functions folded in ascending-atom order below — so
        // the lane count only shapes the wall-clock overlap.
        let row_lanes = par.threads().saturating_sub(1).max(1);
        let chunk = n.div_ceil(row_lanes).max(1);
        // Hoisted before lane construction: `self.trace_memo` is mutably
        // borrowed into the trace lane, so the rows arm reads a copy. When the
        // memo is on, rows go through the shared wide evaluator — bitwise
        // identical to [`gather_row`] per the shared-eval contract.
        let eval_memo = self.trace_memo_enabled;
        let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(row_lanes + 1);
        lanes.push(Lane::Trace {
            h: &mut self.hierarchy,
            memo: &mut self.trace_memo,
            memo_enabled: self.trace_memo_enabled,
        });
        let mut lo = 0;
        while lo < n {
            let hi = (lo + chunk).min(n);
            lanes.push(Lane::Rows { lo, hi });
            lo = hi;
        }

        let outs = map_lanes(par, &mut lanes, |_, lane| match lane {
            Lane::Trace {
                h,
                memo,
                memo_enabled,
            } => {
                let h: &mut MemFrontend = h;
                let memo: &mut Option<TraceMemo> = memo;
                let memo_enabled = *memo_enabled;
                // Same stream, same entry state: reuse the recorded replay
                // (see [`TraceMemo`] for why this cannot change any number).
                if let Some(m) = memo.as_ref() {
                    if memo_enabled
                        && m.n == n
                        && m.pos_base == pos_r.addr(0)
                        && m.acc_base == acc_r.addr(0)
                        && h.replay_state_eq(&m.entry)
                    {
                        h.apply_replay(&m.entry, &m.exit);
                        return LaneOut::Trace {
                            demand: m.demand,
                            loads: m.loads,
                            stores: m.stores,
                        };
                    }
                }
                let entry = memo_enabled.then(|| h.clone());
                // The exact reference stream of the scalar kernel: read
                // pos[i], read every pos[j] in the inner loop, write acc[i].
                let mut demand = 0.0f64;
                let mut loads = 0u64;
                let mut stores = 0u64;
                for i in 0..n {
                    demand += h.access(pos_r.addr(i), AccessKind::Read) as f64;
                    loads += 1;
                    for j in 0..n {
                        if j == i {
                            continue;
                        }
                        // The inner loop's only memory traffic: the j-th
                        // position.
                        demand += h.access(pos_r.addr(j), AccessKind::Read) as f64;
                        loads += 1;
                    }
                    demand += h.access(acc_r.addr(i), AccessKind::Write) as f64;
                    stores += 1;
                }
                if let Some(entry) = entry {
                    *memo = Some(TraceMemo {
                        n,
                        pos_base: pos_r.addr(0),
                        acc_base: acc_r.addr(0),
                        entry,
                        exit: h.clone(),
                        demand,
                        loads,
                        stores,
                    });
                }
                LaneOut::Trace {
                    demand,
                    loads,
                    stores,
                }
            }
            Lane::Rows { lo, hi } => LaneOut::Rows(
                (*lo..*hi)
                    .map(|i| {
                        if eval_memo {
                            md_core::shared_eval::host_row(&soa, i, l, sub, inv_m)
                        } else {
                            gather_row(&soa, i, l, sub, inv_m)
                        }
                    })
                    .collect(),
            ),
        });
        drop(lanes);

        // Serial fold in lane order (trace first, then rows ascending).
        let mut pe_twice = 0.0f64;
        let mut interactions = 0u64;
        let mut row_cursor = 0usize;
        for out in outs {
            match out {
                LaneOut::Trace {
                    demand,
                    loads,
                    stores,
                } => {
                    // Per-access cycle counts are integers, so this one f64
                    // add reproduces the per-access accumulation exactly.
                    self.demand_cycles += demand;
                    self.loads += loads;
                    self.stores += stores;
                }
                LaneOut::Rows(rows) => {
                    for row in rows {
                        sys.accelerations[row_cursor] = row.acc;
                        pe_twice += row.pe;
                        interactions += row.interactions;
                        row_cursor += 1;
                    }
                }
            }
        }

        let dist_evals = (n as f64) * (n as f64 - 1.0);
        // Per-interaction flops: the LJ baseline plus whatever extra work the
        // scenario's potential costs (zero for the paper-faithful LJ run).
        *flops += dist_evals * FLOPS_DISTANCE
            + interactions as f64 * (FLOPS_INTERACT + sub.extra_eval_ops());
        *loop_iters += dist_evals;
        pe_twice * 0.5
    }

    /// Reference check: the same workload run through the untimed kernel.
    pub fn untimed_energies(sim: &SimConfig, steps: usize) -> EnergyReport {
        let mut sys: ParticleSystem<f64> = init::initialize(sim);
        let sub = sim.substrate::<f64>();
        let vv = VelocityVerlet::new(sim.dt);
        let mut kernel = AllPairsFullKernel;
        let mut pe = kernel.compute(&mut sys, &sub);
        for _ in 0..steps {
            pe = vv.step(&mut sys, &mut kernel, &sub);
        }
        EnergyReport::measure(&sys, pe)
    }
}

/// Registered handles for the Opteron's counter set (memsim per-level cache
/// hits/misses, loads/stores, stall cycles, flops).
#[derive(Clone, Copy)]
struct PerfHandles {
    loads: sim_perf::CounterHandle,
    stores: sim_perf::CounterHandle,
    l1_hits: sim_perf::CounterHandle,
    l1_misses: sim_perf::CounterHandle,
    l2_hits: sim_perf::CounterHandle,
    l2_misses: sim_perf::CounterHandle,
    mem_stall_cycles: sim_perf::CounterHandle,
    flops: sim_perf::CounterHandle,
}

impl PerfHandles {
    fn register(p: &mut sim_perf::PerfMonitor) -> Self {
        Self {
            loads: p.register("opteron.mem.loads", "refs"),
            stores: p.register("opteron.mem.stores", "refs"),
            l1_hits: p.register("opteron.l1.hits", "refs"),
            l1_misses: p.register("opteron.l1.misses", "refs"),
            l2_hits: p.register("opteron.l2.hits", "refs"),
            l2_misses: p.register("opteron.l2.misses", "refs"),
            mem_stall_cycles: p.register("opteron.mem.stall_cycles", "cycles"),
            flops: p.register("opteron.flops", "flops"),
        }
    }
}

/// Resolve one fault site in the degradation style: retries cost one unit of
/// recovery work each; an exhausted budget costs a 4× penalty (a full scrub
/// pass) and is recorded in [`sim_fault::FaultStats::exhausted`] rather than
/// failing the run — the supervisor decides what exhaustion means. Returns
/// the extra cycles charged, which the caller folds into `memory_cycles`.
#[cfg(feature = "fault-inject")]
fn resolve_degradable(
    fault: &mut Option<sim_fault::FaultSession>,
    site: sim_fault::FaultSite,
    unit_cycles: f64,
    clock_hz: f64,
) -> f64 {
    let Some(sess) = fault.as_mut() else {
        return 0.0;
    };
    let out = sess.outcome(site);
    let mut extra = unit_cycles * f64::from(out.failures);
    if out.exhausted {
        extra += 4.0 * unit_cycles;
    }
    if extra > 0.0 {
        sess.charge(extra / clock_hz);
    }
    extra
}

impl md_core::device::MdDevice for OpteronCpu {
    fn label(&self) -> String {
        "opteron".to_string()
    }

    /// One flop per `cycles_per_flop` cycles: the scalar FPU pipeline.
    fn peak_ops_per_second(&self) -> f64 {
        self.config.clock_hz / self.config.cycles_per_flop
    }

    #[cfg(feature = "fault-inject")]
    fn resalt(&mut self, salt: u64) {
        self.fault_plan = self.fault_plan.map(|p| p.with_salt(salt));
    }

    fn run(
        &mut self,
        sim: &SimConfig,
        mut opts: md_core::device::RunOptions<'_>,
    ) -> Result<md_core::device::DeviceRun, md_core::device::DeviceError> {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = opts.fault_plan {
            self.fault_plan = Some(plan);
        }
        let (mut sys, start_step): (ParticleSystem<f64>, u64) = match opts.start {
            Some(cp) => (cp.restore(), cp.step),
            None => (init::initialize(sim), 0),
        };
        let par = opts.host_parallelism;
        // Counter values feed the ledger too, so observe with a local
        // monitor when the caller didn't pass one (observation is free: the
        // counted run is bitwise-identical).
        let mut local = sim_perf::PerfMonitor::new();
        let perf = match opts.perf.take() {
            Some(p) => p,
            None => &mut local,
        };
        let r = self.run_md_from_impl(&mut sys, sim, opts.steps, Some(perf), par);
        let clk = self.config.clock_hz;
        let stall_fraction = if r.sim_seconds > 0.0 {
            (r.memory_cycles / clk) / r.sim_seconds
        } else {
            0.0
        };
        let run = md_core::device::DeviceRun {
            sim_seconds: r.sim_seconds,
            energies: r.energies,
            checkpoint: md_core::checkpoint::SystemCheckpoint::capture(
                &sys,
                start_step + opts.steps as u64,
            ),
            attribution: vec![
                ("compute", r.flop_cycles / clk),
                ("memory_stall", r.memory_cycles / clk),
            ],
            derived: vec![
                ("memory_stall_fraction", stall_fraction),
                ("l1_miss_rate", r.memory.l1.miss_rate()),
                ("l2_miss_rate", r.memory.l2.miss_rate()),
            ],
            ops: r.flops,
            bytes_moved: (r.loads + r.stores) as f64 * 8.0,
            #[cfg(feature = "fault-inject")]
            faults: r.faults,
            #[cfg(not(feature = "fault-inject"))]
            faults: md_core::device::FaultStats::default(),
        };
        if let Some(led) = opts.ledger.take() {
            let label = md_core::device::MdDevice::label(self);
            md_core::device::ledger_record_run(led, &label, &run, Some(perf));
        }
        Ok(run)
    }
}

#[cfg(test)]
// Tests assert *bitwise* f64 equality on purpose: identical runs must
// produce identical results, not merely close ones (DESIGN.md §4).
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    /// Test-local shorthand over the single run path (the public surface is
    /// [`md_core::device::MdDevice::run`]).
    fn run_md(cpu: &mut OpteronCpu, sim: &SimConfig, steps: usize) -> OpteronRun {
        let mut sys: ParticleSystem<f64> = init::initialize(sim);
        cpu.run_md_from_impl(&mut sys, sim, steps, None, HostParallelism::Serial)
    }

    fn run_md_perf(
        cpu: &mut OpteronCpu,
        sim: &SimConfig,
        steps: usize,
        perf: &mut sim_perf::PerfMonitor,
    ) -> OpteronRun {
        let mut sys: ParticleSystem<f64> = init::initialize(sim);
        cpu.run_md_from_impl(&mut sys, sim, steps, Some(perf), HostParallelism::Serial)
    }

    fn run_md_from(
        cpu: &mut OpteronCpu,
        sys: &mut ParticleSystem<f64>,
        sim: &SimConfig,
        steps: usize,
    ) -> OpteronRun {
        cpu.run_md_from_impl(sys, sim, steps, None, HostParallelism::Serial)
    }

    #[test]
    fn physics_matches_untimed_kernel() {
        let cfg = SimConfig::reduced_lj(108);
        let mut cpu = OpteronCpu::paper_reference();
        let run = run_md(&mut cpu, &cfg, 5);
        let reference = OpteronCpu::untimed_energies(&cfg, 5);
        assert!(
            (run.energies.total - reference.total).abs() < 1e-9 * reference.total.abs(),
            "traced replay diverged: {} vs {}",
            run.energies.total,
            reference.total
        );
    }

    #[test]
    fn runtime_positive_and_deterministic() {
        let cfg = SimConfig::reduced_lj(256);
        let a = run_md(&mut OpteronCpu::paper_reference(), &cfg, 2);
        let b = run_md(&mut OpteronCpu::paper_reference(), &cfg, 2);
        assert!(a.sim_seconds > 0.0);
        assert_eq!(a.sim_seconds, b.sim_seconds, "simulation is deterministic");
        assert_eq!(a.memory.accesses, b.memory.accesses);
    }

    #[test]
    fn runtime_grows_faster_than_flop_count_past_cache() {
        // The Figure 9 mechanism: once the position array outgrows L1
        // (24·N bytes > 64 KB, i.e. N ≳ 2700), total runtime grows faster
        // than the floating-point work — the gap a cache-less machine like
        // the MTA-2 does not show.
        let run = |n: usize| {
            run_md(
                &mut OpteronCpu::paper_reference(),
                &SimConfig::reduced_lj(n),
                1,
            )
        };
        let small = run(256);
        let large = run(4096);
        let total_ratio = large.sim_seconds / small.sim_seconds;
        let flop_ratio = large.flop_cycles / small.flop_cycles;
        assert!(
            total_ratio > flop_ratio * 1.15,
            "expected cache-driven excess growth: total x{total_ratio:.1} vs flops x{flop_ratio:.1}"
        );
    }

    #[test]
    fn l1_miss_rate_rises_with_problem_size() {
        let miss_rate = |n: usize| {
            let run = run_md(
                &mut OpteronCpu::paper_reference(),
                &SimConfig::reduced_lj(n),
                1,
            );
            run.memory.l1.miss_rate()
        };
        let small = miss_rate(256);
        let large = miss_rate(4096);
        assert!(
            large > small * 2.0,
            "L1 miss rate should grow: {small:.4} -> {large:.4}"
        );
    }

    #[test]
    fn prefetcher_recovers_most_of_the_cache_penalty() {
        // At 4096 atoms the position array spills L1; the stream prefetcher
        // should claw back a large share of the extra memory cycles on this
        // kernel's sequential inner loop (see module docs for why this is an
        // interesting caveat to the paper's cache argument).
        let cfg = SimConfig::reduced_lj(4096);
        let plain = run_md(&mut OpteronCpu::paper_reference(), &cfg, 1);
        let pf = run_md(
            &mut OpteronCpu::new(OpteronConfig::with_prefetcher()),
            &cfg,
            1,
        );
        assert_eq!(plain.energies.total, pf.energies.total, "same physics");
        assert!(
            pf.memory_cycles < 0.7 * plain.memory_cycles,
            "prefetch demand cycles {:.3e} vs plain {:.3e}",
            pf.memory_cycles,
            plain.memory_cycles
        );
        assert_eq!(plain.flop_cycles, pf.flop_cycles, "compute unchanged");
    }

    #[test]
    fn sse2_ablation_faster_but_same_physics() {
        let cfg = SimConfig::reduced_lj(256);
        let scalar = run_md(&mut OpteronCpu::paper_reference(), &cfg, 2);
        let sse2 = run_md(
            &mut OpteronCpu::new(OpteronConfig::sse2_vectorized()),
            &cfg,
            2,
        );
        assert_eq!(scalar.energies.total, sse2.energies.total);
        let speedup = scalar.sim_seconds / sse2.sim_seconds;
        assert!(
            (1.2..2.2).contains(&speedup),
            "SSE2 should be a moderate win (memory system unchanged): {speedup:.2}x"
        );
    }

    #[test]
    fn cycles_decompose() {
        let run = run_md(
            &mut OpteronCpu::paper_reference(),
            &SimConfig::reduced_lj(108),
            2,
        );
        let total = run.sim_seconds * 2.2e9;
        assert!((total - (run.flop_cycles + run.memory_cycles)).abs() < 1.0);
        assert!(run.flops > 0.0);
    }

    #[test]
    fn perf_counters_are_free_and_populated() {
        let cfg = SimConfig::reduced_lj(108);
        let plain = run_md(&mut OpteronCpu::paper_reference(), &cfg, 3);
        let mut perf = sim_perf::PerfMonitor::new();
        let counted = run_md_perf(&mut OpteronCpu::paper_reference(), &cfg, 3, &mut perf);
        assert_eq!(
            plain.sim_seconds, counted.sim_seconds,
            "observability is free"
        );
        assert_eq!(plain.energies.total, counted.energies.total);
        assert_eq!(plain.loads, counted.loads);
        let loads = perf.find("opteron.mem.loads").expect("registered");
        assert_eq!(loads.value(), counted.loads as f64);
        assert_eq!(loads.samples().len(), 4, "prime eval + one per step");
        assert!(perf.find("opteron.l1.hits").expect("registered").value() > 0.0);
        let stalls = perf.find("opteron.mem.stall_cycles").expect("registered");
        assert_eq!(
            stalls.value(),
            counted.memory_cycles,
            "stall counter mirrors run"
        );
    }

    #[test]
    fn segmented_run_matches_unsegmented_run_bitwise() {
        let cfg = SimConfig::reduced_lj(108);

        let mut whole_sys: ParticleSystem<f64> = init::initialize(&cfg);
        run_md_from(&mut OpteronCpu::paper_reference(), &mut whole_sys, &cfg, 10);

        let mut seg_sys: ParticleSystem<f64> = init::initialize(&cfg);
        let mut cpu = OpteronCpu::paper_reference();
        run_md_from(&mut cpu, &mut seg_sys, &cfg, 5);
        run_md_from(&mut cpu, &mut seg_sys, &cfg, 5);

        assert_eq!(seg_sys.positions, whole_sys.positions);
        assert_eq!(seg_sys.velocities, whole_sys.velocities);
        assert_eq!(seg_sys.accelerations, whole_sys.accelerations);
    }

    #[cfg(feature = "fault-inject")]
    mod faulted {
        use super::*;

        #[test]
        fn injected_faults_leave_physics_untouched_and_slow_the_run() {
            let cfg = SimConfig::reduced_lj(108);
            let clean = run_md(&mut OpteronCpu::paper_reference(), &cfg, 6);
            let faulty = run_md(
                &mut OpteronCpu::paper_reference()
                    .with_fault_plan(sim_fault::FaultPlan::new(7, 0.4)),
                &cfg,
                6,
            );

            assert_eq!(clean.energies.total, faulty.energies.total);
            assert_eq!(clean.energies.kinetic, faulty.energies.kinetic);
            assert_eq!(clean.flops, faulty.flops);
            assert!(faulty.faults.any(), "rate 0.4 over 7 evals should fire");
            assert!(faulty.sim_seconds > clean.sim_seconds);
            // Serial timeline: the slowdown is exactly the charged recovery.
            let slowdown = faulty.sim_seconds - clean.sim_seconds;
            assert!(
                (slowdown - faulty.faults.extra_seconds).abs()
                    <= 1e-9 * faulty.faults.extra_seconds,
                "slowdown {slowdown:.3e} vs charged {:.3e}",
                faulty.faults.extra_seconds
            );
        }

        #[test]
        fn exhaustion_degrades_instead_of_failing() {
            let cfg = SimConfig::reduced_lj(108);
            let run = run_md(
                &mut OpteronCpu::paper_reference()
                    .with_fault_plan(sim_fault::FaultPlan::new(3, 1.0)),
                &cfg,
                3,
            );
            assert!(run.faults.exhausted > 0, "rate 1.0 must exhaust retries");
            assert!(run.energies.total.is_finite());
            assert!(run.sim_seconds > 0.0);
        }

        #[test]
        fn fault_schedule_is_reproducible_across_runs() {
            let cfg = SimConfig::reduced_lj(108);
            let run = || {
                run_md(
                    &mut OpteronCpu::paper_reference()
                        .with_fault_plan(sim_fault::FaultPlan::new(42, 0.3)),
                    &cfg,
                    5,
                )
            };
            let a = run();
            let b = run();
            assert_eq!(a.faults.injected, b.faults.injected);
            assert_eq!(a.faults.retries, b.faults.retries);
            assert_eq!(a.faults.extra_seconds, b.faults.extra_seconds);
            assert_eq!(a.sim_seconds, b.sim_seconds);
        }
    }
}
