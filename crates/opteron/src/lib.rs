//! The paper's reference machine: a 2.2 GHz AMD Opteron.
//!
//! This crate runs the real MD computation (identical numerics to
//! `md_core::forces::AllPairsFullKernel`) while replaying every memory
//! reference of the O(N²) gather loop through a simulated K8 cache hierarchy
//! ([`memsim`]) and charging floating-point/issue cycles. The output is a
//! deterministic *simulated* runtime.
//!
//! Why a cache model matters: the paper observes (Figure 9) that "the effect
//! of cache misses are shown in the Opteron processor runs as the array sizes
//! become larger than the cache capacities" — the Opteron's runtime grows
//! faster than the N² flop count, while the cache-less MTA-2's does not. Our
//! replayed kernel reproduces that knee mechanically: at 256 atoms the
//! position array (6 KB) lives in L1; by 4096 atoms (96 KB) every inner-loop
//! sweep spills to L2.

mod config;
mod cpu;

pub use config::OpteronConfig;
pub use cpu::{OpteronCpu, OpteronRun};
