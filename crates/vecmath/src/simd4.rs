//! Software model of a 128-bit, 4-lane single-precision SIMD register.
//!
//! Both devices the paper "SIMDizes" for — the Cell SPE and the GPU pixel
//! pipeline — operate on 4-component `f32` vectors. The paper's natural
//! mapping stores the x, y, z components of each physical vector in the first
//! three lanes (the fourth lane carries the potential-energy contribution on
//! the GPU, and is unused padding on the SPE).
//!
//! This type executes the arithmetic for real (so device results can be
//! validated against the reference kernel) while remaining a single nameable
//! "instruction set" that the device cost models can meter: every SPE-kernel
//! SIMD operation in `cell-be` maps to exactly one `F32x4` method.

/// A 4-lane single-precision SIMD value.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(16))]
pub struct F32x4(pub [f32; 4]);

// The `add`/`sub`/`mul`/`neg` *methods* (rather than operator impls) are
// deliberate: each call site corresponds to one SPE/GPU SIMD instruction, and
// keeping them as named methods makes the device cost accounting auditable.
#[allow(clippy::should_implement_trait)]
impl F32x4 {
    pub const ZERO: Self = Self([0.0; 4]);

    #[inline(always)]
    pub fn new(a: f32, b: f32, c: f32, d: f32) -> Self {
        Self([a, b, c, d])
    }

    /// Broadcast a scalar to all four lanes.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; 4])
    }

    /// Pack an xyz triple with a free fourth lane (SPE/GPU layout).
    #[inline(always)]
    pub fn from_xyz(x: f32, y: f32, z: f32) -> Self {
        Self([x, y, z, 0.0])
    }

    #[inline(always)]
    pub fn lane(self, i: usize) -> f32 {
        self.0[i]
    }

    #[inline(always)]
    pub fn with_lane(mut self, i: usize, v: f32) -> Self {
        self.0[i] = v;
        self
    }

    #[inline(always)]
    pub fn add(self, o: Self) -> Self {
        Self([
            self.0[0] + o.0[0],
            self.0[1] + o.0[1],
            self.0[2] + o.0[2],
            self.0[3] + o.0[3],
        ])
    }

    #[inline(always)]
    pub fn sub(self, o: Self) -> Self {
        Self([
            self.0[0] - o.0[0],
            self.0[1] - o.0[1],
            self.0[2] - o.0[2],
            self.0[3] - o.0[3],
        ])
    }

    #[inline(always)]
    pub fn mul(self, o: Self) -> Self {
        Self([
            self.0[0] * o.0[0],
            self.0[1] * o.0[1],
            self.0[2] * o.0[2],
            self.0[3] * o.0[3],
        ])
    }

    /// Fused multiply-add `self * a + b` — the SPE's workhorse instruction.
    #[inline(always)]
    pub fn madd(self, a: Self, b: Self) -> Self {
        Self([
            self.0[0].mul_add(a.0[0], b.0[0]),
            self.0[1].mul_add(a.0[1], b.0[1]),
            self.0[2].mul_add(a.0[2], b.0[2]),
            self.0[3].mul_add(a.0[3], b.0[3]),
        ])
    }

    /// Per-lane reciprocal estimate (modelled as exact; the SPE refines its
    /// estimate with a Newton-Raphson step that we fold in).
    #[inline(always)]
    pub fn recip(self) -> Self {
        Self(self.0.map(|v| v.recip()))
    }

    /// Per-lane reciprocal square root.
    #[inline(always)]
    pub fn rsqrt(self) -> Self {
        Self(self.0.map(|v| 1.0 / v.sqrt()))
    }

    #[inline(always)]
    pub fn sqrt(self) -> Self {
        Self(self.0.map(f32::sqrt))
    }

    #[inline(always)]
    pub fn abs(self) -> Self {
        Self(self.0.map(f32::abs))
    }

    #[inline(always)]
    pub fn neg(self) -> Self {
        Self(self.0.map(|v| -v))
    }

    /// Per-lane copysign: magnitude of `self`, sign of `sign`.
    #[inline(always)]
    pub fn copysign(self, sign: Self) -> Self {
        Self([
            self.0[0].copysign(sign.0[0]),
            self.0[1].copysign(sign.0[1]),
            self.0[2].copysign(sign.0[2]),
            self.0[3].copysign(sign.0[3]),
        ])
    }

    /// Per-lane `round` (to nearest, ties away from zero — adequate for the
    /// minimum-image computation where ties do not occur for physical data).
    #[inline(always)]
    pub fn round(self) -> Self {
        Self(self.0.map(f32::round))
    }

    /// Per-lane compare-greater-than producing an all-ones/all-zeros style
    /// mask (represented as 1.0/0.0 for arithmetic selects).
    #[inline(always)]
    pub fn cmp_gt(self, o: Self) -> Self {
        Self([
            if self.0[0] > o.0[0] { 1.0 } else { 0.0 },
            if self.0[1] > o.0[1] { 1.0 } else { 0.0 },
            if self.0[2] > o.0[2] { 1.0 } else { 0.0 },
            if self.0[3] > o.0[3] { 1.0 } else { 0.0 },
        ])
    }

    /// Per-lane compare-less-than mask (1.0 where `self < o`).
    #[inline(always)]
    pub fn cmp_lt(self, o: Self) -> Self {
        Self([
            if self.0[0] < o.0[0] { 1.0 } else { 0.0 },
            if self.0[1] < o.0[1] { 1.0 } else { 0.0 },
            if self.0[2] < o.0[2] { 1.0 } else { 0.0 },
            if self.0[3] < o.0[3] { 1.0 } else { 0.0 },
        ])
    }

    /// Branch-free select: where `mask` lane is non-zero take `a`, else `b`.
    /// This is the SPE `selb` instruction.
    #[inline(always)]
    pub fn select(mask: Self, a: Self, b: Self) -> Self {
        Self([
            if mask.0[0] != 0.0 { a.0[0] } else { b.0[0] },
            if mask.0[1] != 0.0 { a.0[1] } else { b.0[1] },
            if mask.0[2] != 0.0 { a.0[2] } else { b.0[2] },
            if mask.0[3] != 0.0 { a.0[3] } else { b.0[3] },
        ])
    }

    #[inline(always)]
    pub fn min(self, o: Self) -> Self {
        Self([
            self.0[0].min(o.0[0]),
            self.0[1].min(o.0[1]),
            self.0[2].min(o.0[2]),
            self.0[3].min(o.0[3]),
        ])
    }

    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        Self([
            self.0[0].max(o.0[0]),
            self.0[1].max(o.0[1]),
            self.0[2].max(o.0[2]),
            self.0[3].max(o.0[3]),
        ])
    }

    /// Horizontal sum of the first three lanes (dot products on xyz data).
    #[inline(always)]
    pub fn hsum3(self) -> f32 {
        self.0[0] + self.0[1] + self.0[2]
    }

    /// Horizontal sum of all four lanes.
    #[inline(always)]
    pub fn hsum4(self) -> f32 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    /// 3-lane dot product (`self . o` over x,y,z) — compiled on the SPE as a
    /// multiply plus two adds after a shuffle; we count it as one composite op.
    #[inline(always)]
    pub fn dot3(self, o: Self) -> f32 {
        self.mul(o).hsum3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lane_layout() {
        let v = F32x4::from_xyz(1.0, 2.0, 3.0);
        assert_eq!(v.lane(0), 1.0);
        assert_eq!(v.lane(1), 2.0);
        assert_eq!(v.lane(2), 3.0);
        assert_eq!(v.lane(3), 0.0);
        assert_eq!(v.with_lane(3, 9.0).lane(3), 9.0);
    }

    #[test]
    fn splat_and_arith() {
        let a = F32x4::splat(2.0);
        let b = F32x4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.mul(b), F32x4::new(2.0, 4.0, 6.0, 8.0));
        assert_eq!(a.add(b), F32x4::new(3.0, 4.0, 5.0, 6.0));
        assert_eq!(b.sub(a), F32x4::new(-1.0, 0.0, 1.0, 2.0));
    }

    #[test]
    fn madd_matches_mul_add() {
        let a = F32x4::new(1.0, 2.0, 3.0, 4.0);
        let b = F32x4::splat(0.5);
        let c = F32x4::splat(10.0);
        let r = a.madd(b, c);
        assert_eq!(r, F32x4::new(10.5, 11.0, 11.5, 12.0));
    }

    #[test]
    fn select_is_branch_free_if() {
        let mask = F32x4::new(1.0, 0.0, 1.0, 0.0);
        let a = F32x4::splat(7.0);
        let b = F32x4::splat(-7.0);
        assert_eq!(F32x4::select(mask, a, b), F32x4::new(7.0, -7.0, 7.0, -7.0));
    }

    #[test]
    fn cmp_masks() {
        let a = F32x4::new(1.0, 5.0, -2.0, 0.0);
        let b = F32x4::splat(0.0);
        assert_eq!(a.cmp_gt(b), F32x4::new(1.0, 1.0, 0.0, 0.0));
        assert_eq!(a.cmp_lt(b), F32x4::new(0.0, 0.0, 1.0, 0.0));
    }

    #[test]
    fn horizontal_ops() {
        let v = F32x4::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(v.hsum3(), 6.0);
        assert_eq!(v.hsum4(), 10.0);
        assert_eq!(v.dot3(F32x4::splat(2.0)), 12.0);
    }

    proptest! {
        #[test]
        fn rsqrt_matches_scalar(v in proptest::array::uniform4(1e-3f32..1e6)) {
            let r = F32x4(v).rsqrt();
            for (i, &vi) in v.iter().enumerate() {
                let expect = 1.0 / vi.sqrt();
                prop_assert!((r.lane(i) - expect).abs() <= 1e-6 * expect.abs());
            }
        }

        #[test]
        fn copysign_lanewise(v in proptest::array::uniform4(-1e3f32..1e3),
                             s in proptest::array::uniform4(-1e3f32..1e3)) {
            let r = F32x4(v).copysign(F32x4(s));
            for i in 0..4 {
                prop_assert_eq!(r.lane(i), v[i].copysign(s[i]));
            }
        }

        #[test]
        fn min_max_bracket(v in proptest::array::uniform4(-1e3f32..1e3),
                           w in proptest::array::uniform4(-1e3f32..1e3)) {
            let lo = F32x4(v).min(F32x4(w));
            let hi = F32x4(v).max(F32x4(w));
            for i in 0..4 {
                prop_assert!(lo.lane(i) <= hi.lane(i));
            }
        }
    }
}
