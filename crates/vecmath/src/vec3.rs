//! A plain 3-component vector, generic over precision.

use crate::Real;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-component vector of `T` (position, velocity, acceleration, force...).
///
/// Deliberately a transparent POD struct: device simulators copy these through
/// byte-level local stores and textures.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Vec3<T> {
    pub x: T,
    pub y: T,
    pub z: T,
}

impl<T: Real> Vec3<T> {
    pub const fn new(x: T, y: T, z: T) -> Self {
        Self { x, y, z }
    }

    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO, T::ZERO)
    }

    pub fn splat(v: T) -> Self {
        Self::new(v, v, v)
    }

    #[inline(always)]
    pub fn dot(self, other: Self) -> T {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Squared Euclidean norm.
    #[inline(always)]
    pub fn norm2(self) -> T {
        self.dot(self)
    }

    #[inline(always)]
    pub fn norm(self) -> T {
        self.norm2().sqrt()
    }

    pub fn cross(self, other: Self) -> Self {
        Self::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Component-wise product.
    pub fn mul_elem(self, other: Self) -> Self {
        Self::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }

    pub fn map(self, mut f: impl FnMut(T) -> T) -> Self {
        Self::new(f(self.x), f(self.y), f(self.z))
    }

    /// Widen to f64 for diagnostics/accumulation.
    pub fn to_f64(self) -> Vec3<f64> {
        Vec3::new(self.x.to_f64(), self.y.to_f64(), self.z.to_f64())
    }

    /// Narrow (or keep) from f64.
    pub fn from_f64(v: Vec3<f64>) -> Self {
        Self::new(T::from_f64(v.x), T::from_f64(v.y), T::from_f64(v.z))
    }

    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    pub fn to_array(self) -> [T; 3] {
        [self.x, self.y, self.z]
    }

    pub fn from_array(a: [T; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl<T: Real> Add for Vec3<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl<T: Real> Sub for Vec3<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl<T: Real> Mul<T> for Vec3<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, s: T) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }
}

impl<T: Real> Div<T> for Vec3<T> {
    type Output = Self;
    #[inline(always)]
    fn div(self, s: T) -> Self {
        Self::new(self.x / s, self.y / s, self.z / s)
    }
}

impl<T: Real> Neg for Vec3<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl<T: Real> AddAssign for Vec3<T> {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl<T: Real> SubAssign for Vec3<T> {
    #[inline(always)]
    fn sub_assign(&mut self, o: Self) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl<T: Real> Index<usize> for Vec3<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl<T: Real> IndexMut<usize> for Vec3<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0f64, 2.0, 3.0);
        let b = Vec3::new(4.0f64, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 32.0);
    }

    #[test]
    fn norm_of_unit_axes() {
        for i in 0..3 {
            let mut v = Vec3::<f64>::zero();
            v[i] = 1.0;
            assert_eq!(v.norm(), 1.0);
            assert_eq!(v.norm2(), 1.0);
        }
    }

    #[test]
    fn cross_right_handed() {
        let x = Vec3::new(1.0f64, 0.0, 0.0);
        let y = Vec3::new(0.0f64, 1.0, 0.0);
        let z = Vec3::new(0.0f64, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
    }

    #[test]
    fn index_roundtrip() {
        let mut v = Vec3::new(1.0f32, 2.0, 3.0);
        for i in 0..3 {
            v[i] *= 10.0;
        }
        assert_eq!(v.to_array(), [10.0, 20.0, 30.0]);
        assert_eq!(Vec3::from_array([10.0f32, 20.0, 30.0]), v);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec3::new(1.0f32, 2.0, 3.0);
        let _ = v[3];
    }

    proptest! {
        #[test]
        fn dot_is_commutative(ax in -1e3f64..1e3, ay in -1e3f64..1e3, az in -1e3f64..1e3,
                              bx in -1e3f64..1e3, by in -1e3f64..1e3, bz in -1e3f64..1e3) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert_eq!(a.dot(b), b.dot(a));
        }

        #[test]
        fn cross_is_orthogonal(ax in -1e2f64..1e2, ay in -1e2f64..1e2, az in -1e2f64..1e2,
                               bx in -1e2f64..1e2, by in -1e2f64..1e2, bz in -1e2f64..1e2) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(b);
            // |a.dot(c)| should be tiny relative to magnitudes involved.
            let scale = (a.norm() * b.norm()).max(1.0);
            prop_assert!(a.dot(c).abs() <= 1e-9 * scale * scale);
            prop_assert!(b.dot(c).abs() <= 1e-9 * scale * scale);
        }

        #[test]
        fn norm2_nonnegative(ax in -1e3f64..1e3, ay in -1e3f64..1e3, az in -1e3f64..1e3) {
            prop_assert!(Vec3::new(ax, ay, az).norm2() >= 0.0);
        }
    }
}
