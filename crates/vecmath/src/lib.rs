//! Numeric foundation for the MD-on-emerging-architectures reproduction.
//!
//! Provides:
//!
//! - [`Real`]: an abstraction over `f32`/`f64` so the MD kernels can be written
//!   once and instantiated at the precision each device used in the paper
//!   (single precision on the Cell BE and GPU, double precision on the MTA-2
//!   and the Opteron reference).
//! - [`Vec3`]: a plain 3-component vector.
//! - [`F32x4`]: a software model of a 128-bit, 4-lane single-precision SIMD
//!   register, mirroring the SPE/GPU register files (both are 4-wide `f32`).
//!   All device kernels that claim to be "SIMDized" in the paper go through
//!   this type so that the op-counting cost models can observe them.
//! - [`pbc`]: periodic-boundary-condition helpers, including the paper's
//!   27-neighboring-unit-cell minimum-image search.

pub mod pbc;
mod real;
mod simd4;
mod vec3;
pub mod wide;

pub use real::Real;
pub use simd4::F32x4;
pub use vec3::Vec3;
pub use wide::{F32x8, F64x4, Mask4, Mask8};
