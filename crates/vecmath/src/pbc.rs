//! Periodic-boundary-condition (PBC) helpers.
//!
//! The paper's kernel works in a cubic box of side `L` with periodic images.
//! It describes the minimum-image step as "searching the 27 neighboring unit
//! cells for the instances of each atom pair which are closest", and the first
//! two SPE optimizations in Figure 5 are precisely transformations of this
//! step (replace the `if` with copysign math, then search all three axes
//! simultaneously with SIMD). We therefore provide all three algorithmically
//! equivalent forms, which the device kernels pick between:
//!
//! - [`min_image_branchy`]: the `if`-based original,
//! - [`min_image_copysign`]: the branch-free scalar replacement,
//! - [`min_image_search27`]: the explicit 27-image search.
//!
//! All three agree for separations within one box length of each other (the
//! invariant the property tests pin down).

use crate::{Real, Vec3};

/// Wrap a coordinate into the primary box `[0, l)`.
#[inline(always)]
pub fn wrap_coord<T: Real>(x: T, l: T) -> T {
    let w = x - (x / l).floor() * l;
    // Guard against w == l from floating-point rounding when x is a tiny
    // negative value.
    if w >= l {
        w - l
    } else {
        w
    }
}

/// Wrap a position vector into the primary box.
#[inline(always)]
pub fn wrap_position<T: Real>(p: Vec3<T>, l: T) -> Vec3<T> {
    Vec3::new(wrap_coord(p.x, l), wrap_coord(p.y, l), wrap_coord(p.z, l))
}

/// Minimum-image correction for a single coordinate: the scalar core of
/// [`min_image_branchy`], exposed so structure-of-arrays kernels can apply
/// it axis by axis with bit-identical results to the vector form.
#[inline(always)]
pub fn min_image_coord<T: Real>(mut c: T, l: T) -> T {
    let half = l * T::HALF;
    if c > half {
        c -= l;
    } else if c < -half {
        c += l;
    }
    c
}

/// [`min_image_coord`] in select form: both corrections are computed and the
/// result is chosen with comparisons instead of taken branches. Bitwise
/// identical to the branchy form in every case (the two conditions are
/// mutually exclusive, and the chosen expression is the same `c - l` / `c + l`
/// / `c`), but the straight-line shape lets LLVM turn it into cmov/blend and
/// vectorize loops over packed coordinates.
#[inline(always)]
pub fn min_image_coord_select<T: Real>(c: T, l: T) -> T {
    let half = l * T::HALF;
    let down = c - l;
    let up = c + l;
    let folded = if c > half { down } else { c };
    if c < -half {
        up
    } else {
        folded
    }
}

/// Minimum-image displacement, branchy form: `if d > L/2 {d -= L} ...` per axis.
///
/// Assumes both positions lie in the primary box (so each raw component is in
/// `(-L, L)` and one conditional correction per side suffices).
#[inline(always)]
pub fn min_image_branchy<T: Real>(d: Vec3<T>, l: T) -> Vec3<T> {
    Vec3::new(
        min_image_coord(d.x, l),
        min_image_coord(d.y, l),
        min_image_coord(d.z, l),
    )
}

/// Minimum-image displacement, branch-free form using round/copysign math.
///
/// `d - L * round(d / L)` maps any displacement to the nearest image, which is
/// the transformation the paper's "replace if with copysign" optimization
/// implements on the SPE.
#[inline(always)]
pub fn min_image_copysign<T: Real>(d: Vec3<T>, l: T) -> Vec3<T> {
    let fix = |c: T| {
        // round(c/L) computed as trunc(|c|/L + 1/2) with the sign of c —
        // i.e. floor-free, matching the copysign idiom used on hardware
        // without a branch.
        let n = (c.abs() / l + T::HALF).floor().copysign(c);
        c - l * n
    };
    Vec3::new(fix(d.x), fix(d.y), fix(d.z))
}

/// Minimum-image displacement by explicitly searching the 27 neighboring unit
/// cells (offsets in {-1, 0, +1}^3) for the closest image, as described in the
/// paper's SPE section. Correct for any displacement with components in
/// `(-L, L)`.
pub fn min_image_search27<T: Real>(d: Vec3<T>, l: T) -> Vec3<T> {
    let mut best = d;
    let mut best2 = d.norm2();
    for ix in -1i32..=1 {
        for iy in -1i32..=1 {
            for iz in -1i32..=1 {
                let cand = Vec3::new(
                    d.x + l * T::from_f64(ix as f64),
                    d.y + l * T::from_f64(iy as f64),
                    d.z + l * T::from_f64(iz as f64),
                );
                let c2 = cand.norm2();
                if c2 < best2 {
                    best2 = c2;
                    best = cand;
                }
            }
        }
    }
    best
}

/// Minimum-image displacement between two wrapped positions.
#[inline(always)]
pub fn min_image_between<T: Real>(a: Vec3<T>, b: Vec3<T>, l: T) -> Vec3<T> {
    min_image_branchy(a - b, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_into_box() {
        let l = 10.0f64;
        assert_eq!(wrap_coord(3.0, l), 3.0);
        assert_eq!(wrap_coord(13.0, l), 3.0);
        assert_eq!(wrap_coord(-2.0, l), 8.0);
        assert_eq!(wrap_coord(0.0, l), 0.0);
        let w = wrap_coord(-1e-18, l);
        assert!((0.0..l).contains(&w), "tiny negative wraps into box: {w}");
    }

    #[test]
    fn branchy_basic() {
        let l = 10.0f64;
        let d = Vec3::new(6.0, -6.0, 2.0);
        assert_eq!(min_image_branchy(d, l), Vec3::new(-4.0, 4.0, 2.0));
    }

    #[test]
    fn scalar_coord_matches_vector_form_bitwise() {
        let l = 7.5f64;
        let mut c = -7.4;
        while c < 7.4 {
            let d = Vec3::new(c, -c, c / 3.0);
            let v = min_image_branchy(d, l);
            assert_eq!(v.x, min_image_coord(d.x, l));
            assert_eq!(v.y, min_image_coord(d.y, l));
            assert_eq!(v.z, min_image_coord(d.z, l));
            c += 0.211;
        }
    }

    #[test]
    fn select_form_matches_branchy_bitwise() {
        for l in [7.5f64, 10.0, 0.1] {
            let mut c = -2.0 * l;
            while c < 2.0 * l {
                assert_eq!(
                    min_image_coord(c, l).to_bits(),
                    min_image_coord_select(c, l).to_bits(),
                    "c={c} l={l}"
                );
                c += l * 0.0137;
            }
            for edge in [l / 2.0, -l / 2.0, 0.0, -0.0] {
                assert_eq!(
                    min_image_coord(edge, l).to_bits(),
                    min_image_coord_select(edge, l).to_bits()
                );
            }
        }
    }

    #[test]
    fn copysign_matches_branchy_on_grid() {
        let l = 7.5f64;
        let mut c = -7.4;
        while c < 7.4 {
            let d = Vec3::new(c, -c, c / 2.0);
            let a = min_image_branchy(d, l);
            let b = min_image_copysign(d, l);
            assert!(
                (a - b).norm() < 1e-12,
                "mismatch at {c}: branchy={a:?} copysign={b:?}"
            );
            c += 0.173;
        }
    }

    #[test]
    fn search27_finds_nearest_image() {
        let l = 10.0f64;
        // A displacement of 9 along x should fold to -1.
        let d = Vec3::new(9.0, 0.1, -9.5);
        let m = min_image_search27(d, l);
        assert!((m.x - (-1.0)).abs() < 1e-12);
        assert!((m.y - 0.1).abs() < 1e-12);
        assert!((m.z - 0.5).abs() < 1e-12);
    }

    proptest! {
        /// For positions wrapped to the primary box, all three minimum-image
        /// formulations produce the same displacement.
        #[test]
        fn all_forms_agree(ax in 0.0f64..10.0, ay in 0.0f64..10.0, az in 0.0f64..10.0,
                           bx in 0.0f64..10.0, by in 0.0f64..10.0, bz in 0.0f64..10.0) {
            let l = 10.0f64;
            let d = Vec3::new(ax - bx, ay - by, az - bz);
            let m1 = min_image_branchy(d, l);
            let m2 = min_image_copysign(d, l);
            let m3 = min_image_search27(d, l);
            prop_assert!((m1 - m2).norm() < 1e-9, "branchy={m1:?} copysign={m2:?}");
            prop_assert!((m1.norm() - m3.norm()).abs() < 1e-9, "branchy={m1:?} search27={m3:?}");
        }

        /// The minimum-image distance is bounded by sqrt(3)/2 * L.
        #[test]
        fn min_image_distance_bounded(ax in 0.0f64..10.0, ay in 0.0f64..10.0, az in 0.0f64..10.0,
                                      bx in 0.0f64..10.0, by in 0.0f64..10.0, bz in 0.0f64..10.0) {
            let l = 10.0f64;
            let d = Vec3::new(ax - bx, ay - by, az - bz);
            let m = min_image_branchy(d, l);
            prop_assert!(m.norm() <= l * 3.0f64.sqrt() / 2.0 + 1e-9);
        }

        /// search27 never returns a longer vector than the input.
        #[test]
        fn search27_never_lengthens(dx in -9.9f64..9.9, dy in -9.9f64..9.9, dz in -9.9f64..9.9) {
            let l = 10.0f64;
            let d = Vec3::new(dx, dy, dz);
            prop_assert!(min_image_search27(d, l).norm2() <= d.norm2() + 1e-12);
        }

        /// Wrapping is idempotent.
        #[test]
        fn wrap_idempotent(x in -100.0f64..100.0) {
            let l = 7.3f64;
            let w = wrap_coord(x, l);
            prop_assert!((0.0..l).contains(&w));
            prop_assert!((wrap_coord(w, l) - w).abs() < 1e-12);
        }
    }
}
