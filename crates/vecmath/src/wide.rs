//! Wide batched lanes for the shared physics-once evaluation path
//! (DESIGN.md §17).
//!
//! [`F32x4`](crate::F32x4) models the *device* register files (SPE/GPU,
//! 4-wide f32) so the op-counting cost models can observe them. The types
//! here are different in kind: they are **host** execution lanes — the
//! batched evaluator the shared kernel uses to compute each device's physics
//! once per step. [`F64x4`] carries four f64 pair-distances at a time (the
//! Opteron/MTA double-precision flavor); [`F32x8`] carries eight f32
//! pair-distances (the Cell/GPU single-precision flavor).
//!
//! Every operation is per-lane IEEE arithmetic with no cross-lane
//! reassociation, so a batched distance pass followed by a serial masked
//! accumulate is *bitwise* the scalar loop — the property the replay memos
//! rely on. On x86-64 hosts with AVX2 the shared kernels bypass these
//! portable lanes for hand-written intrinsics (same per-lane ops, same
//! bits); elsewhere these types are the evaluator itself and LLVM is free to
//! vectorize them.

use std::ops::{Add, Mul, Sub};

/// Four f64 lanes, batched. Plain per-lane IEEE ops only.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct F64x4(pub [f64; 4]);

/// Comparison result for [`F64x4`], one bool per lane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Mask4(pub [bool; 4]);

impl Mask4 {
    #[inline]
    pub fn any(self) -> bool {
        self.0[0] | self.0[1] | self.0[2] | self.0[3]
    }

    #[inline]
    pub fn test(self, lane: usize) -> bool {
        self.0[lane]
    }

    /// Lane-wise AND (mask combine, e.g. `r2 < cutoff² && r2 > 0`).
    #[inline]
    pub fn and(self, o: Self) -> Self {
        Self([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }
}

impl F64x4 {
    pub const ZERO: Self = Self([0.0; 4]);

    #[inline]
    pub fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// Load four consecutive lanes starting at `slice[0]`.
    #[inline]
    pub fn from_slice(slice: &[f64]) -> Self {
        Self([slice[0], slice[1], slice[2], slice[3]])
    }

    #[inline]
    pub fn lane(self, k: usize) -> f64 {
        self.0[k]
    }

    #[inline]
    pub fn cmp_gt(self, o: Self) -> Mask4 {
        Mask4([
            self.0[0] > o.0[0],
            self.0[1] > o.0[1],
            self.0[2] > o.0[2],
            self.0[3] > o.0[3],
        ])
    }

    #[inline]
    pub fn cmp_lt(self, o: Self) -> Mask4 {
        Mask4([
            self.0[0] < o.0[0],
            self.0[1] < o.0[1],
            self.0[2] < o.0[2],
            self.0[3] < o.0[3],
        ])
    }

    /// Per-lane `if mask { a } else { b }` (the blend the intrinsic path
    /// does with `vblendvpd`).
    #[inline]
    pub fn select(mask: Mask4, a: Self, b: Self) -> Self {
        let pick = |k: usize| if mask.0[k] { a.0[k] } else { b.0[k] };
        Self([pick(0), pick(1), pick(2), pick(3)])
    }
}

impl Sub for F64x4 {
    type Output = Self;

    #[inline]
    fn sub(self, o: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] - o.0[k]))
    }
}

impl Add for F64x4 {
    type Output = Self;

    #[inline]
    fn add(self, o: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] + o.0[k]))
    }
}

impl Mul for F64x4 {
    type Output = Self;

    #[inline]
    fn mul(self, o: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] * o.0[k]))
    }
}

/// Eight f32 lanes, batched (the single-precision device-kernel flavor).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct F32x8(pub [f32; 8]);

/// Comparison result for [`F32x8`], one bool per lane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Mask8(pub [bool; 8]);

impl Mask8 {
    #[inline]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }

    #[inline]
    pub fn test(self, lane: usize) -> bool {
        self.0[lane]
    }

    #[inline]
    pub fn and(self, o: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] & o.0[k]))
    }
}

impl F32x8 {
    pub const ZERO: Self = Self([0.0; 8]);

    #[inline]
    pub fn splat(v: f32) -> Self {
        Self([v; 8])
    }

    /// Load eight consecutive lanes starting at `slice[0]`.
    #[inline]
    pub fn from_slice(slice: &[f32]) -> Self {
        let mut v = [0.0f32; 8];
        v.copy_from_slice(&slice[..8]);
        Self(v)
    }

    #[inline]
    pub fn lane(self, k: usize) -> f32 {
        self.0[k]
    }

    #[inline]
    pub fn cmp_gt(self, o: Self) -> Mask8 {
        Mask8(std::array::from_fn(|k| self.0[k] > o.0[k]))
    }

    #[inline]
    pub fn cmp_lt(self, o: Self) -> Mask8 {
        Mask8(std::array::from_fn(|k| self.0[k] < o.0[k]))
    }

    /// Per-lane `if mask { a } else { b }` (`vblendvps` on hardware).
    #[inline]
    pub fn select(mask: Mask8, a: Self, b: Self) -> Self {
        Self(std::array::from_fn(
            |k| {
                if mask.0[k] {
                    a.0[k]
                } else {
                    b.0[k]
                }
            },
        ))
    }
}

impl Sub for F32x8 {
    type Output = Self;

    #[inline]
    fn sub(self, o: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] - o.0[k]))
    }
}

impl Add for F32x8 {
    type Output = Self;

    #[inline]
    fn add(self, o: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] + o.0[k]))
    }
}

impl Mul for F32x8 {
    type Output = Self;

    #[inline]
    fn mul(self, o: Self) -> Self {
        Self(std::array::from_fn(|k| self.0[k] * o.0[k]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::Sub;

    #[test]
    fn f64x4_ops_are_per_lane_ieee() {
        let a = F64x4([1.0, -2.5, 0.0, f64::MAX]);
        let b = F64x4([0.5, -2.5, -0.0, f64::MAX]);
        let s = a.sub(b);
        for k in 0..4 {
            assert_eq!(s.lane(k).to_bits(), (a.lane(k) - b.lane(k)).to_bits());
        }
        let m = a.cmp_gt(b);
        assert_eq!(m, Mask4([true, false, false, false]));
        assert!(m.any());
        let sel = F64x4::select(m, a, b);
        assert_eq!(sel.lane(0), 1.0);
        assert_eq!(sel.lane(1), -2.5);
    }

    #[test]
    fn f32x8_select_matches_scalar_branch() {
        let a = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(0.0);
        let m = a.cmp_gt(F32x8::splat(4.5));
        let sel = F32x8::select(m, a, b);
        for k in 0..8 {
            let want = if a.lane(k) > 4.5 { a.lane(k) } else { 0.0 };
            assert_eq!(sel.lane(k), want);
        }
    }

    #[test]
    fn mask_and_combines_lanewise() {
        let lo = F64x4([0.5, 1.5, 2.5, 3.5]).cmp_gt(F64x4::splat(1.0));
        let hi = F64x4([0.5, 1.5, 2.5, 3.5]).cmp_lt(F64x4::splat(3.0));
        assert_eq!(lo.and(hi), Mask4([false, true, true, false]));
    }
}
