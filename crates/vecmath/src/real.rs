//! Precision abstraction over `f32` and `f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar usable in the MD kernels.
///
/// Implemented for `f32` and `f64`. The trait is deliberately small: it covers
/// exactly the operations the Lennard-Jones force/energy evaluation and the
/// velocity-Verlet integrator need, so a kernel written against `Real`
/// compiles to the same code as a hand-monomorphized one.
pub trait Real:
    Copy
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;
    const HALF: Self;

    /// Lossless-ish conversion from `f64` (used for constants and parameters).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (used for diagnostics and accumulation).
    fn to_f64(self) -> f64;
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }

    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    fn floor(self) -> Self;
    fn round(self) -> Self;
    fn recip(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn exp(self) -> Self;
    fn ln(self) -> Self;
    fn cos(self) -> Self;
    fn sin(self) -> Self;
    fn min(self, other: Self) -> Self;
    fn max(self, other: Self) -> Self;
    /// `self` with the sign of `sign` — the branch-free idiom the paper uses
    /// to replace an `if` on the SPE ("replace if with copysign").
    fn copysign(self, sign: Self) -> Self;
    fn is_finite(self) -> bool;

    /// Machine epsilon for this precision.
    fn epsilon() -> Self;
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn floor(self) -> Self {
                self.floor()
            }
            #[inline(always)]
            fn round(self) -> Self {
                self.round()
            }
            #[inline(always)]
            fn recip(self) -> Self {
                self.recip()
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline(always)]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn copysign(self, sign: Self) -> Self {
                <$t>::copysign(self, sign)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn check_constants<T: Real>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::ONE + T::ONE, T::TWO);
        assert_eq!(T::HALF + T::HALF, T::ONE);
    }

    #[test]
    fn constants_f32() {
        check_constants::<f32>();
    }

    #[test]
    fn constants_f64() {
        check_constants::<f64>();
    }

    #[test]
    fn copysign_matches_branchy_form() {
        // The paper's SPE optimization replaces `if (d > L/2) d -= L` style
        // logic with copysign math; make sure our primitive behaves.
        for &x in &[-3.5f64, -0.0, 0.0, 1.25] {
            for &s in &[-2.0f64, 2.0] {
                let expect = if s < 0.0 { -x.abs() } else { x.abs() };
                assert_eq!(Real::copysign(x, s), expect);
            }
        }
    }

    #[test]
    fn roundtrip_f64() {
        assert_eq!(<f64 as Real>::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(<f32 as Real>::from_f64(1.5).to_f64(), 1.5);
    }

    #[test]
    fn from_usize_is_exact_for_small_counts() {
        assert_eq!(<f32 as Real>::from_usize(2048), 2048.0);
        assert_eq!(<f64 as Real>::from_usize(1 << 20), (1u64 << 20) as f64);
    }

    #[test]
    fn min_max_powi() {
        assert_eq!(Real::min(2.0f64, 3.0), 2.0);
        assert_eq!(Real::max(2.0f64, 3.0), 3.0);
        assert_eq!(Real::powi(2.0f64, 6), 64.0);
    }
}
