//! Offline shim for the subset of `rand 0.8` this workspace uses: the
//! [`RngCore`] trait (md-core's `SplitMix64` implements it so callers can
//! plug into rand-style generic code) and the [`Error`] type its fallible
//! method mentions. See `compat/README.md` for the shim policy.

use std::fmt;

/// The core random-number-generator trait, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

/// Mirror of `rand::Error`. The shimmed generators are infallible, so this
/// is only ever mentioned in signatures, never constructed.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let mut rng: Box<dyn RngCore> = Box::new(Counter(0));
        assert_eq!(rng.next_u64(), 1);
        let mut buf = [0u8; 12];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn error_displays() {
        let e = Error::new("exhausted");
        assert!(e.to_string().contains("exhausted"));
    }
}
