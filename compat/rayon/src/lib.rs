//! Offline shim for the subset of `rayon` this workspace uses:
//! `slice.par_iter().enumerate().map(f).collect::<Vec<_>>()`.
//!
//! Unlike a sequential stub, this executes on real OS threads
//! (`std::thread::scope`, one chunk per available core), so the
//! `RayonKernel` host benchmark still demonstrates genuine multi-core
//! scaling. Results are collected **in index order**, matching rayon's
//! indexed-collect determinism guarantee that `md_core::parallel` relies on.

pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

pub use pool::{ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

mod pool {
    use std::cell::Cell;
    use std::fmt;

    thread_local! {
        /// Worker-thread cap installed by [`ThreadPool::install`] on the
        /// calling thread; `None` uses all available cores.
        pub(crate) static CURRENT_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
    }

    /// Mirror of `rayon::ThreadPoolBuilder` for the one configuration the
    /// workspace uses: a fixed worker-thread count.
    #[derive(Default)]
    pub struct ThreadPoolBuilder {
        num_threads: usize,
    }

    impl ThreadPoolBuilder {
        pub fn new() -> Self {
            Self::default()
        }

        /// 0 (the default) means "use all available cores", as in rayon.
        #[must_use]
        pub fn num_threads(mut self, num_threads: usize) -> Self {
            self.num_threads = num_threads;
            self
        }

        pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
            Ok(ThreadPool {
                num_threads: self.num_threads,
            })
        }
    }

    /// Mirror of `rayon::ThreadPool`. The shim spawns scoped threads per
    /// `collect` rather than keeping persistent workers, so the "pool" is
    /// just the thread-count limit `install` applies while `op` runs.
    pub struct ThreadPool {
        num_threads: usize,
    }

    impl ThreadPool {
        /// Run `op` with this pool's thread budget: parallel iterators used
        /// inside `op` (on this thread) split across at most `num_threads`
        /// workers. Order-preserving collection keeps results identical to
        /// any other budget, including serial.
        pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
            let limit = (self.num_threads > 0).then_some(self.num_threads);
            let prev = CURRENT_LIMIT.with(|l| l.replace(limit));
            let guard = RestoreLimit(prev);
            let out = op();
            drop(guard);
            out
        }

        pub fn current_num_threads(&self) -> usize {
            if self.num_threads > 0 {
                self.num_threads
            } else {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
        }
    }

    /// Restores the previous limit even if `op` panics.
    struct RestoreLimit(Option<usize>);

    impl Drop for RestoreLimit {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_LIMIT.with(|l| l.set(prev));
        }
    }

    /// Mirror of `rayon::ThreadPoolBuildError` (this shim cannot actually
    /// fail to build, but callers match the real API's `Result`).
    #[derive(Debug)]
    pub struct ThreadPoolBuildError;

    impl fmt::Display for ThreadPoolBuildError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("thread pool build failed")
        }
    }

    impl std::error::Error for ThreadPoolBuildError {}
}

pub mod iter {
    /// Entry point mirroring `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: Sync + 'data;
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    #[derive(Clone, Copy)]
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        pub fn enumerate(self) -> ParEnumerate<'data, T> {
            ParEnumerate { items: self.items }
        }

        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, impl Fn((usize, &'data T)) -> R + Sync>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f: move |(_, item)| f(item),
            }
        }
    }

    /// Indexed parallel iterator (`par_iter().enumerate()`).
    #[derive(Clone, Copy)]
    pub struct ParEnumerate<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParEnumerate<'data, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn((usize, &'data T)) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// Mapped parallel iterator; `collect` runs the map on worker threads.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        /// Execute across threads, preserving element order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            run_indexed(self.items, &self.f).into_iter().collect()
        }
    }

    fn run_indexed<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        let n = items.len();
        let limit = crate::pool::CURRENT_LIMIT.with(std::cell::Cell::get);
        let threads = limit
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .min(n.max(1));
        if threads <= 1 || n < 2 {
            return items.iter().enumerate().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let mut rest = out.as_mut_slice();
        std::thread::scope(|scope| {
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk).min(n);
                let (head, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let base = lo;
                scope.spawn(move || {
                    for (k, slot) in head.iter_mut().enumerate() {
                        let i = base + k;
                        *slot = Some(f((i, &items[i])));
                    }
                });
                lo = hi;
            }
        });
        out.into_iter()
            .map(|r| r.unwrap_or_else(|| unreachable!("every index filled by exactly one worker")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn indexed_map_collect_preserves_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn unindexed_map_works() {
        let data = [1u32, 2, 3, 4, 5];
        let out: Vec<u32> = data.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn empty_and_single_element() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().enumerate().map(|(_, &x)| x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().enumerate().map(|(_, &x)| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn install_caps_threads_and_preserves_results() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shim pools always build");
        assert_eq!(pool.current_num_threads(), 1);
        let data: Vec<u32> = (0..1000).collect();
        let serial: Vec<u64> = pool.install(|| {
            data.par_iter()
                .enumerate()
                .map(|(i, &x)| u64::from(x) * 3 + i as u64)
                .collect()
        });
        let free: Vec<u64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| u64::from(x) * 3 + i as u64)
            .collect();
        assert_eq!(serial, free);
    }

    #[test]
    fn install_restores_previous_limit() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("shim pools always build");
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shim pools always build");
        outer.install(|| {
            inner.install(|| {});
            // The inner install must not clobber the outer budget.
            let got: Vec<usize> = [0usize; 4].par_iter().enumerate().map(|(i, _)| i).collect();
            assert_eq!(got, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let data: Vec<f64> = (0..4096).map(|i| f64::from(i as u32) * 0.5).collect();
        let a: Vec<f64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + i as f64)
            .collect();
        let b: Vec<f64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + i as f64)
            .collect();
        assert_eq!(a, b);
    }
}
