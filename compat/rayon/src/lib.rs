//! Offline shim for the subset of `rayon` this workspace uses:
//! `slice.par_iter().enumerate().map(f).collect::<Vec<_>>()`.
//!
//! Unlike a sequential stub, this executes on real OS threads
//! (`std::thread::scope`, one chunk per available core), so the
//! `RayonKernel` host benchmark still demonstrates genuine multi-core
//! scaling. Results are collected **in index order**, matching rayon's
//! indexed-collect determinism guarantee that `md_core::parallel` relies on.

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

pub use pool::{ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

mod pool {
    use std::cell::Cell;
    use std::fmt;
    use std::sync::OnceLock;

    thread_local! {
        /// Worker-thread cap installed by [`ThreadPool::install`] on the
        /// calling thread; `None` uses the [`default_thread_count`].
        pub(crate) static CURRENT_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
    }

    static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

    /// Worker count used when no `install` limit is active: the
    /// `RAYON_NUM_THREADS` environment variable when set to a positive
    /// integer (matching rayon's global-pool override), otherwise all
    /// available cores. Read once and cached for the process lifetime,
    /// as rayon's global pool does.
    pub(crate) fn default_thread_count() -> usize {
        *DEFAULT_THREADS.get_or_init(|| {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                })
        })
    }

    /// Mirror of `rayon::ThreadPoolBuilder` for the one configuration the
    /// workspace uses: a fixed worker-thread count.
    #[derive(Default)]
    pub struct ThreadPoolBuilder {
        num_threads: usize,
    }

    impl ThreadPoolBuilder {
        pub fn new() -> Self {
            Self::default()
        }

        /// 0 (the default) means "use all available cores", as in rayon.
        #[must_use]
        pub fn num_threads(mut self, num_threads: usize) -> Self {
            self.num_threads = num_threads;
            self
        }

        pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
            Ok(ThreadPool {
                num_threads: self.num_threads,
            })
        }
    }

    /// Mirror of `rayon::ThreadPool`. The shim spawns scoped threads per
    /// `collect` rather than keeping persistent workers, so the "pool" is
    /// just the thread-count limit `install` applies while `op` runs.
    pub struct ThreadPool {
        num_threads: usize,
    }

    impl ThreadPool {
        /// Run `op` with this pool's thread budget: parallel iterators used
        /// inside `op` (on this thread) split across at most `num_threads`
        /// workers. Order-preserving collection keeps results identical to
        /// any other budget, including serial.
        pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
            let limit = (self.num_threads > 0).then_some(self.num_threads);
            let prev = CURRENT_LIMIT.with(|l| l.replace(limit));
            let guard = RestoreLimit(prev);
            let out = op();
            drop(guard);
            out
        }

        pub fn current_num_threads(&self) -> usize {
            if self.num_threads > 0 {
                self.num_threads
            } else {
                default_thread_count()
            }
        }
    }

    /// Restores the previous limit even if `op` panics.
    struct RestoreLimit(Option<usize>);

    impl Drop for RestoreLimit {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_LIMIT.with(|l| l.set(prev));
        }
    }

    /// Mirror of `rayon::ThreadPoolBuildError` (this shim cannot actually
    /// fail to build, but callers match the real API's `Result`).
    #[derive(Debug)]
    pub struct ThreadPoolBuildError;

    impl fmt::Display for ThreadPoolBuildError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("thread pool build failed")
        }
    }

    impl std::error::Error for ThreadPoolBuildError {}
}

pub mod iter {
    /// Entry point mirroring `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: Sync + 'data;
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    #[derive(Clone, Copy)]
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        pub fn enumerate(self) -> ParEnumerate<'data, T> {
            ParEnumerate { items: self.items }
        }

        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, impl Fn((usize, &'data T)) -> R + Sync>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f: move |(_, item)| f(item),
            }
        }
    }

    /// Indexed parallel iterator (`par_iter().enumerate()`).
    #[derive(Clone, Copy)]
    pub struct ParEnumerate<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParEnumerate<'data, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn((usize, &'data T)) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// Mapped parallel iterator; `collect` runs the map on worker threads.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        /// Execute across threads, preserving element order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            run_indexed(self.items, &self.f).into_iter().collect()
        }
    }

    /// Worker count for a job over `n` items: the calling thread's installed
    /// limit if any, else the process default (`RAYON_NUM_THREADS` or all
    /// cores), never more than `n`.
    fn resolved_threads(n: usize) -> usize {
        crate::pool::CURRENT_LIMIT
            .with(std::cell::Cell::get)
            .unwrap_or_else(crate::pool::default_thread_count)
            .min(n.max(1))
    }

    fn run_indexed<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        let n = items.len();
        let threads = resolved_threads(n);
        if threads <= 1 || n < 2 {
            return items.iter().enumerate().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        // The calling thread takes the first chunk itself (after the workers
        // are launched): one fewer spawn, and the caller does useful work
        // instead of blocking at the scope join.
        let (first, mut rest) = out.as_mut_slice().split_at_mut(chunk.min(n));
        std::thread::scope(|scope| {
            let mut lo = chunk.min(n);
            while lo < n {
                let hi = (lo + chunk).min(n);
                let (head, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let base = lo;
                scope.spawn(move || {
                    for (k, slot) in head.iter_mut().enumerate() {
                        let i = base + k;
                        *slot = Some(f((i, &items[i])));
                    }
                });
                lo = hi;
            }
            for (i, slot) in first.iter_mut().enumerate() {
                *slot = Some(f((i, &items[i])));
            }
        });
        out.into_iter()
            .map(|r| r.unwrap_or_else(|| unreachable!("every index filled by exactly one worker")))
            .collect()
    }

    /// Entry point mirroring `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: Send + 'data;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { items: self }
        }
    }

    /// Mutably borrowing parallel iterator over a slice.
    pub struct ParIterMut<'data, T> {
        items: &'data mut [T],
    }

    impl<'data, T: Send> ParIterMut<'data, T> {
        pub fn enumerate(self) -> ParEnumerateMut<'data, T> {
            ParEnumerateMut { items: self.items }
        }
    }

    /// Indexed mutable parallel iterator (`par_iter_mut().enumerate()`).
    pub struct ParEnumerateMut<'data, T> {
        items: &'data mut [T],
    }

    impl<'data, T: Send> ParEnumerateMut<'data, T> {
        pub fn map<R, F>(self, f: F) -> ParMapMut<'data, T, F>
        where
            R: Send,
            F: Fn((usize, &'data mut T)) -> R + Sync,
        {
            ParMapMut {
                items: self.items,
                f,
            }
        }
    }

    /// Mapped mutable parallel iterator; `collect` runs the map on worker
    /// threads, each owning a disjoint chunk of the slice.
    pub struct ParMapMut<'data, T, F> {
        items: &'data mut [T],
        f: F,
    }

    impl<'data, T, R, F> ParMapMut<'data, T, F>
    where
        T: Send,
        R: Send,
        F: Fn((usize, &'data mut T)) -> R + Sync,
    {
        /// Execute across threads, preserving element order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            run_indexed_mut(self.items, &self.f).into_iter().collect()
        }
    }

    fn run_indexed_mut<'data, T, R, F>(items: &'data mut [T], f: &F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn((usize, &'data mut T)) -> R + Sync,
    {
        let n = items.len();
        let threads = resolved_threads(n);
        if threads <= 1 || n < 2 {
            return items.iter_mut().enumerate().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        // As in `run_indexed`: the caller keeps the first chunk and runs it
        // after launching the workers for the rest.
        let (out_first, mut out_rest) = out.as_mut_slice().split_at_mut(chunk.min(n));
        let (item_first, mut item_rest) = items.split_at_mut(chunk.min(n));
        std::thread::scope(|scope| {
            let mut lo = chunk.min(n);
            while lo < n {
                let hi = (lo + chunk).min(n);
                let (out_head, out_tail) = out_rest.split_at_mut(hi - lo);
                out_rest = out_tail;
                let (item_head, item_tail) = std::mem::take(&mut item_rest).split_at_mut(hi - lo);
                item_rest = item_tail;
                let base = lo;
                scope.spawn(move || {
                    for (k, (slot, item)) in
                        out_head.iter_mut().zip(item_head.iter_mut()).enumerate()
                    {
                        *slot = Some(f((base + k, item)));
                    }
                });
                lo = hi;
            }
            for (k, (slot, item)) in out_first.iter_mut().zip(item_first.iter_mut()).enumerate() {
                *slot = Some(f((k, item)));
            }
        });
        out.into_iter()
            .map(|r| r.unwrap_or_else(|| unreachable!("every index filled by exactly one worker")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn indexed_map_collect_preserves_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn unindexed_map_works() {
        let data = [1u32, 2, 3, 4, 5];
        let out: Vec<u32> = data.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn empty_and_single_element() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().enumerate().map(|(_, &x)| x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().enumerate().map(|(_, &x)| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn install_caps_threads_and_preserves_results() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shim pools always build");
        assert_eq!(pool.current_num_threads(), 1);
        let data: Vec<u32> = (0..1000).collect();
        let serial: Vec<u64> = pool.install(|| {
            data.par_iter()
                .enumerate()
                .map(|(i, &x)| u64::from(x) * 3 + i as u64)
                .collect()
        });
        let free: Vec<u64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| u64::from(x) * 3 + i as u64)
            .collect();
        assert_eq!(serial, free);
    }

    #[test]
    fn install_restores_previous_limit() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("shim pools always build");
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shim pools always build");
        outer.install(|| {
            inner.install(|| {});
            // The inner install must not clobber the outer budget.
            let got: Vec<usize> = [0usize; 4].par_iter().enumerate().map(|(i, _)| i).collect();
            assert_eq!(got, vec![0, 1, 2, 3]);
        });
    }

    #[test]
    fn indexed_mut_map_mutates_and_preserves_order() {
        let mut data: Vec<u64> = (0..5_000).collect();
        let out: Vec<u64> = data
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| {
                *x += 1;
                *x * 2 + i as u64
            })
            .collect();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64 + 1) * 2 + i as u64);
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1, "mutation applied in place");
        }
    }

    #[test]
    fn mut_map_identical_across_thread_budgets() {
        let base: Vec<u32> = (0..997).collect();
        let run = |threads: usize| {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("shim pools always build");
            let mut data = base.clone();
            let out: Vec<u64> = pool.install(|| {
                data.par_iter_mut()
                    .enumerate()
                    .map(|(i, x)| {
                        *x = x.wrapping_mul(3);
                        u64::from(*x) + i as u64
                    })
                    .collect()
            });
            (data, out)
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let data: Vec<f64> = (0..4096).map(|i| f64::from(i as u32) * 0.5).collect();
        let a: Vec<f64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + i as f64)
            .collect();
        let b: Vec<f64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + i as f64)
            .collect();
        assert_eq!(a, b);
    }
}
