//! Offline shim for the subset of `rayon` this workspace uses:
//! `slice.par_iter().enumerate().map(f).collect::<Vec<_>>()`.
//!
//! Unlike a sequential stub, this executes on real OS threads
//! (`std::thread::scope`, one chunk per available core), so the
//! `RayonKernel` host benchmark still demonstrates genuine multi-core
//! scaling. Results are collected **in index order**, matching rayon's
//! indexed-collect determinism guarantee that `md_core::parallel` relies on.

pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

pub mod iter {
    /// Entry point mirroring `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Item: Sync + 'data;
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    #[derive(Clone, Copy)]
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        pub fn enumerate(self) -> ParEnumerate<'data, T> {
            ParEnumerate { items: self.items }
        }

        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, impl Fn((usize, &'data T)) -> R + Sync>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f: move |(_, item)| f(item),
            }
        }
    }

    /// Indexed parallel iterator (`par_iter().enumerate()`).
    #[derive(Clone, Copy)]
    pub struct ParEnumerate<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParEnumerate<'data, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn((usize, &'data T)) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// Mapped parallel iterator; `collect` runs the map on worker threads.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T, R, F> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        /// Execute across threads, preserving element order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            run_indexed(self.items, &self.f).into_iter().collect()
        }
    }

    fn run_indexed<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn((usize, &'data T)) -> R + Sync,
    {
        let n = items.len();
        let threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(n.max(1));
        if threads <= 1 || n < 2 {
            return items.iter().enumerate().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let mut rest = out.as_mut_slice();
        std::thread::scope(|scope| {
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk).min(n);
                let (head, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let base = lo;
                scope.spawn(move || {
                    for (k, slot) in head.iter_mut().enumerate() {
                        let i = base + k;
                        *slot = Some(f((i, &items[i])));
                    }
                });
                lo = hi;
            }
        });
        out.into_iter()
            .map(|r| r.unwrap_or_else(|| unreachable!("every index filled by exactly one worker")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn indexed_map_collect_preserves_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn unindexed_map_works() {
        let data = [1u32, 2, 3, 4, 5];
        let out: Vec<u32> = data.par_iter().map(|&x| x * x).collect();
        assert_eq!(out, vec![1, 4, 9, 16, 25]);
    }

    #[test]
    fn empty_and_single_element() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().enumerate().map(|(_, &x)| x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().enumerate().map(|(_, &x)| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn deterministic_across_runs() {
        let data: Vec<f64> = (0..4096).map(|i| f64::from(i as u32) * 0.5).collect();
        let a: Vec<f64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + i as f64)
            .collect();
        let b: Vec<f64> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| x + i as f64)
            .collect();
        assert_eq!(a, b);
    }
}
