//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Each bench target still builds and runs (`cargo bench`), executing every
//! registered benchmark and printing a one-line mean time per benchmark ID.
//! The statistical machinery (bootstrap, outlier classification, plots,
//! baselines) is intentionally absent — the simulated-device benches are
//! exactly deterministic, and the host benches only need a representative
//! mean in this environment.

use std::time::{Duration, Instant};

/// Shim of `criterion::Criterion`. Builder methods are accepted (and mostly
/// recorded) for API compatibility; `sample_size` and the time windows steer
/// how many iterations the shim actually runs.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    #[must_use]
    pub fn without_plots(self) -> Self {
        self
    }

    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id();
        self.run_one(&label, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mean = bencher.mean();
        println!("bench: {label:<50} mean {}", fmt_duration(mean));
    }
}

/// Shim of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Shim of `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything acceptable as a benchmark identifier (`&str`, `String`, or a
/// structured [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Shim of `criterion::Bencher`: runs the closure `sample_size` times and
/// records per-iteration durations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure wall-clock time of `f` per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Measure with caller-provided timing (the simulated-device benches
    /// report *simulated* seconds through this).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        for _ in 0..self.sample_size.min(3) {
            let iters = 1u64;
            let total = f(iters);
            self.samples.push(total / u32::try_from(iters).unwrap_or(1));
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.samples.iter().sum();
        total / u32::try_from(self.samples.len()).unwrap_or(1)
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Shim of `criterion::criterion_group!` (both the plain and the
/// `name = ...; config = ...; targets = ...` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Shim of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(4);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        // 1 warm-up + 4 samples.
        assert_eq!(calls, 5);
    }

    #[test]
    fn group_and_ids_compose_labels() {
        assert_eq!(
            BenchmarkId::new("kernel", 256).into_benchmark_id(),
            "kernel/256"
        );
        assert_eq!(BenchmarkId::from_parameter(8).into_benchmark_id(), "8");
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("x", 1), &41u32, |b, &input| {
            b.iter_custom(|iters| {
                ran = input == 41 && iters >= 1;
                Duration::from_micros(10)
            });
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000 µs");
        assert_eq!(fmt_duration(Duration::from_nanos(3)), "3.0 ns");
    }
}
