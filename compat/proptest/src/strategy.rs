//! The `Strategy` trait and the concrete strategies the workspace uses.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of test values. Mirrors `proptest::strategy::Strategy`, with
/// generation collapsed to a single deterministic draw (no value trees, no
/// shrinking).
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values. Mirrors `Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            /// Uniform draw from `[start, end)`.
            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty strategy range");
                let span = f64::from(self.end) - f64::from(self.start);
                let v = f64::from(self.start) + span * rng.next_f64();
                // Guard the half-open bound against rounding at the top end.
                (v as $t).clamp(self.start, self.end.next_down())
            }
        }
    )*};
}

float_range_strategy!(f32);

impl Strategy for Range<f64> {
    type Value = f64;

    /// Uniform draw from `[start, end)`.
    fn generate(&self, rng: &mut TestRng) -> f64 {
        debug_assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        v.clamp(self.start, self.end.next_down())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u64, usize, u32, u16, u8);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// String strategy from a pattern literal. Real proptest interprets the
/// pattern as a regex; the only pattern the workspace uses is `".*"`, so the
/// shim generates arbitrary strings (length 0..=40, biased toward the JSON-
/// hostile characters escaping code must survive: quotes, backslashes,
/// control characters, and multi-byte code points).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const SPICE: &[char] = &[
            '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '{', '}', '[', ']', ':', ',', 'π',
            '🧪', '\u{7f}', '\u{0}',
        ];
        let len = rng.below(41) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            if rng.below(4) == 0 {
                out.push(SPICE[rng.below(SPICE.len() as u64) as usize]);
            } else {
                // Printable ASCII.
                out.push((0x20 + rng.below(0x5f) as u8) as char);
            }
        }
        out
    }
}

/// Output of [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Output of [`crate::array::uniform4`] (const-generic over the arity).
#[derive(Clone, Copy, Debug)]
pub struct ArrayStrategy<S, const N: usize> {
    pub(crate) element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..5_000 {
            let f = (0.85f64..2.4).generate(&mut r);
            assert!((0.85..2.4).contains(&f), "{f}");
            let g = (1e-3f32..1e6).generate(&mut r);
            assert!((1e-3..1e6).contains(&g), "{g}");
            let u = (1usize..100).generate(&mut r);
            assert!((1..100).contains(&u), "{u}");
            let s = (0u64..500).generate(&mut r);
            assert!(s < 500, "{s}");
        }
    }

    #[test]
    fn ranges_cover_the_span() {
        // All quartiles of a range get hit — the generator is not stuck.
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let v = (0.0f64..1.0).generate(&mut r);
            seen[(v * 4.0) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn tuple_and_map_compose() {
        let strat = (0u64..10, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b, c)| a as f64 + b + c);
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((0.0..12.0).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_length_and_elements() {
        let strat = crate::collection::vec((1usize..100, 1usize..32), 1..20);
        let mut r = rng();
        for _ in 0..200 {
            let v = strat.generate(&mut r);
            assert!((1..20).contains(&v.len()));
            for (a, b) in &v {
                assert!((1..100).contains(a) && (1..32).contains(b));
            }
        }
    }

    #[test]
    fn uniform4_fills_all_lanes() {
        let strat = crate::array::uniform4(-1e3f32..1e3);
        let mut r = rng();
        let a = strat.generate(&mut r);
        let b = strat.generate(&mut r);
        assert_ne!(a, b, "lanes drawn independently across calls");
        for lane in a {
            assert!((-1e3..1e3).contains(&lane));
        }
    }

    #[test]
    fn string_strategy_exercises_hostile_chars() {
        let mut r = rng();
        let mut saw_quote_or_backslash = false;
        let mut saw_control = false;
        for _ in 0..400 {
            let s = ".*".generate(&mut r);
            saw_quote_or_backslash |= s.contains('"') || s.contains('\\');
            saw_control |= s.chars().any(|c| (c as u32) < 0x20);
        }
        assert!(saw_quote_or_backslash && saw_control);
    }
}
