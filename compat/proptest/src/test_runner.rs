//! Deterministic test runner machinery: per-case RNG and the config/error
//! types the `proptest!` macro expands against.

use std::fmt;

/// Runner configuration. Only `cases` is consulted.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// Fewer cases than upstream's 256: the workspace's properties drive
    /// whole MD simulations per case, and the generator (no shrinking) leans
    /// on deterministic reproducibility rather than volume.
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A failed property case (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64-based deterministic RNG, seeded from the test name + case
/// index so every case is reproducible without a persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test sizes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("prop_x", 3);
        let mut b = TestRng::for_case("prop_x", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("prop_x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut d = TestRng::for_case("prop_y", 3);
        assert_ne!(b.next_u64(), d.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = TestRng::for_case("unit", 0);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_case("bound", 0);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn config_defaults_and_with_cases() {
        assert_eq!(ProptestConfig::default().cases, 32);
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
    }
}
