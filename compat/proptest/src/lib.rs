//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provides deterministic property testing: the `proptest!` macro runs each
//! property over `ProptestConfig::cases` generated inputs, with each case's
//! RNG seeded from the *test name and case index* — a failure reproduces
//! exactly on re-run, with no persistence files needed. There is **no
//! shrinking**: the failing input is printed as generated.
//!
//! Supported strategy surface (everything the workspace's properties use):
//! numeric `Range` strategies (`0.5f64..7.0`, `1usize..100`, ...), tuples of
//! strategies up to arity 3, `&str` regex-ish string strategies (pattern
//! semantics reduced to "arbitrary strings", which is what `".*"` asks for),
//! [`collection::vec`], [`array::uniform4`], and [`Strategy::prop_map`].

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `proptest::collection::vec`: a `Vec` of values from `element`, with a
    /// length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod array {
    use crate::strategy::{ArrayStrategy, Strategy};

    /// `proptest::array::uniform4`: a `[T; 4]` with each lane drawn
    /// independently from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> ArrayStrategy<S, 4> {
        ArrayStrategy { element }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declare deterministic property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Rendered eagerly so the property body is free to move the
                // generated values.
                let mut input_desc = ::std::string::String::new();
                $(
                    input_desc.push_str(concat!("  ", stringify!($arg), " = "));
                    input_desc.push_str(&::std::format!("{:?}", $arg));
                    input_desc.push('\n');
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        case + 1,
                        config.cases,
                        e,
                        input_desc
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// `prop_assert!`: like `assert!` but reported through the proptest runner
/// (which prints the generated inputs). Must run inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!`: equality assertion reported through the runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}
